//! **Fig. 5 — thermal analysis** of the three-tier stack vs the 2D design.
//!
//! Paper setup: 3 tiers, 2 mm PCB, 100 µm bumps, 1 mm package, 20 µm
//! TIM1/TIM2, h = 1000 W/m²·°C, ambient 25 °C. Paper result: tier
//! temperatures 46.8–47.8 °C (slightly hotter toward the southern die
//! edge), 2D design at 44 °C, everything far below the 100 °C RRAM
//! retention limit.
//!
//! Power per tier comes from the measured engine energy ledger (run on a
//! reference workload), spatialized by the Fig. 4 floorplans.

use arch3d::design::{build_report, DesignVariant};
use arch3d::floorplan::{digital_tier_floorplan, rram_tier_floorplan};
use cim::energy::EnergyComponent;
use thermal::{embed_die_power, render_ascii_map, solve, Stack};

fn main() {
    let h3d = build_report(DesignVariant::H3dThreeTier);
    let sram2d = build_report(DesignVariant::Sram2d);

    // Power budget: per-iteration ledger at the design clock. The model's
    // iteration rate is cycles/frequency.
    let iter_rate = h3d.frequency_mhz * 1e6 / h3d.cycles_per_iter as f64;
    let total_power = h3d.energy_per_iter_j * iter_rate;
    let e = &h3d.energy_ledger;
    let sim_frac =
        e.fraction(EnergyComponent::SimilarityMvm) + 0.5 * e.fraction(EnergyComponent::Control);
    let proj_frac = e.fraction(EnergyComponent::ProjectionMvm)
        + e.fraction(EnergyComponent::Activation)
        + 0.5 * e.fraction(EnergyComponent::Control);
    let digital_frac = 1.0 - sim_frac - proj_frac;
    println!("=== Fig. 5: thermal analysis ===");
    println!(
        "H3D power {:.1} mW (tier-3 {:.1} / tier-2 {:.1} / tier-1 {:.1} mW) at {:.0} MHz",
        1e3 * total_power,
        1e3 * total_power * sim_frac,
        1e3 * total_power * proj_frac,
        1e3 * total_power * digital_frac,
        h3d.frequency_mhz
    );

    // Die sides from the report footprints.
    let die_side_h3d = h3d.footprint_mm2.sqrt() * 1e-3; // m
    let die_side_2d = sram2d.total_area_mm2.sqrt() * 1e-3;

    // Package lateral extent: calibration knob documented in DESIGN.md.
    let extent_mm = 0.78;
    let (nx, ny) = (24, 24);
    let stack = Stack::paper_h3dfact(extent_mm);
    let dies = stack.die_layers();

    // Floorplans → die power grids → embedded package grids.
    let fp_t3 = rram_tier_floorplan("tier-3", die_side_h3d * 1e3, total_power * sim_frac);
    let fp_t2 = rram_tier_floorplan("tier-2", die_side_h3d * 1e3, total_power * proj_frac);
    let fp_t1 = digital_tier_floorplan("tier-1", die_side_h3d * 1e3, total_power * digital_frac);
    let die_n = 12;
    let mut powers = vec![vec![]; stack.layers().len()];
    for (fp, &die_layer) in [&fp_t1, &fp_t2, &fp_t3].iter().zip(&dies) {
        fp.validate().expect("floorplan valid");
        let grid = fp.power_grid(die_n, die_n);
        powers[die_layer] = embed_die_power(&grid, die_n, die_side_h3d, nx, extent_mm * 1e-3);
    }
    let field = solve(&stack, nx, ny, &powers, 25.0, 1e-7, 400_000);

    println!("\n--- H3D stack (paper: 46.8 .. 47.8 C) ---");
    for (i, &z) in dies.iter().enumerate() {
        let s = field.layer_stats(z);
        println!(
            "  {:<22} min {:>5.1} C  mean {:>5.1} C  max {:>5.1} C",
            stack.layers()[z].name,
            s.min_c,
            s.mean_c,
            s.max_c
        );
        let _ = i;
    }
    let hottest = dies
        .iter()
        .map(|&z| field.layer_stats(z).max_c)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  hottest cell {hottest:.1} C — RRAM retention limit 100 C {}",
        if hottest < 100.0 {
            "respected"
        } else {
            "VIOLATED"
        }
    );

    println!("\n  tier-3 thermal map (ASCII; north up, hotter = denser):");
    for line in render_ascii_map(field.layer_plane(dies[2]), nx).lines() {
        println!("    {line}");
    }

    // 2D reference: same total power on one larger die. The package land
    // grows with the die (same margin per side as the 3D assembly), which
    // is what lets the 2D design shed heat over a wider top surface.
    let extent_2d_mm = extent_mm + 0.5 * (die_side_2d - die_side_h3d) * 1e3;
    let stack2d = Stack::paper_2d(extent_2d_mm);
    let die2d = stack2d.die_layers()[0];
    let fp2d = digital_tier_floorplan("die-2d", die_side_2d * 1e3, total_power);
    let grid2d = fp2d.power_grid(die_n, die_n);
    let mut powers2d = vec![vec![]; stack2d.layers().len()];
    powers2d[die2d] = embed_die_power(&grid2d, die_n, die_side_2d, nx, extent_2d_mm * 1e-3);
    let field2d = solve(&stack2d, nx, ny, &powers2d, 25.0, 1e-7, 400_000);
    let s2d = field2d.layer_stats(die2d);
    println!(
        "\n--- 2D reference (paper: ~44 C) ---\n  {:<22} min {:>5.1} C  mean {:>5.1} C  max {:>5.1} C",
        stack2d.layers()[die2d].name,
        s2d.min_c,
        s2d.mean_c,
        s2d.max_c
    );
    println!(
        "\n3D-vs-2D peak delta: {:+.1} C (stacking concentrates the same power on less footprint)",
        hottest - s2d.max_c
    );
}
