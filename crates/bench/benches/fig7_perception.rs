//! **Fig. 7 / Sec. V-E — holographic perception task**: attribute
//! disentanglement of synthetic RAVEN-style scenes through the simulated
//! neural frontend and the stochastic factorizer (paper: 99.4 % attribute
//! estimation accuracy), plus the full neuro-symbolic RPM solve.

use h3dfact_bench::env;
use perception::{AttributeSchema, NeuralFrontend, PerceptionPipeline};
use resonator::engine::LoopConfig;
use resonator::{Activation, StochasticResonator};

fn main() {
    let schema = AttributeSchema::raven();
    let dim = 512;
    let scenes = env::trials(120);
    let budget = 3_000;

    println!("=== Fig. 7: holographic perception on RAVEN-style scenes ===");
    println!(
        "schema: {:?} (cardinalities {:?}), D = {dim}",
        schema.names(),
        schema.cardinalities()
    );

    println!("\n--- attribute estimation accuracy (paper: 99.4 %) ---");
    for (label, frontend) in [
        ("ideal frontend       ", NeuralFrontend::ideal(1)),
        ("paper-quality (2 %)  ", NeuralFrontend::paper_quality(2)),
        ("degraded (5 % flips) ", NeuralFrontend::new(0.05, 0.002, 3)),
    ] {
        let mut pipeline = PerceptionPipeline::new(schema.clone(), dim, frontend, 7_700);
        // VTGT tuned for the small-codebook perception workload
        // (Sec. V-D): 2σ per LSB converges fastest at this shape.
        let mut engine = StochasticResonator::with_parts(
            LoopConfig::stochastic(budget),
            StochasticResonator::CHIP_CELL_SIGMA * (dim as f64).sqrt(),
            Activation::noise_referenced(4, dim, 2.0),
            11,
        );
        let report = pipeline.attribute_accuracy(&mut engine, scenes);
        println!(
            "  {label}: attribute {:>5.1} % | whole-scene {:>5.1} % | mean iters {:>6.1}",
            100.0 * report.attribute_accuracy,
            100.0 * report.scene_accuracy,
            report.mean_iterations
        );
    }

    println!("\n--- end-to-end RPM (rule induction over factorized panels) ---");
    let puzzles = (scenes / 6).max(10);
    let mut pipeline =
        PerceptionPipeline::new(schema.clone(), dim, NeuralFrontend::paper_quality(5), 7_800);
    let mut engine = StochasticResonator::with_parts(
        LoopConfig::stochastic(budget),
        StochasticResonator::CHIP_CELL_SIGMA * (dim as f64).sqrt(),
        Activation::noise_referenced(4, dim, 2.0),
        13,
    );
    let acc = pipeline.solve_puzzles(&mut engine, puzzles);
    println!(
        "  {puzzles} puzzles, 8 candidates each: {:>5.1} % solved (chance: 12.5 %)",
        100.0 * acc
    );
}
