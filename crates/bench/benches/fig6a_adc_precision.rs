//! **Fig. 6a — convergence vs ADC precision**: low-precision 4-bit readout
//! converges *faster* than 8-bit because coarse quantization sparsifies
//! the similarity vector and adds exploration stochasticity (paper: 99 %
//! at ~10 iterations for 4-bit vs ~30 for 8-bit).

use h3dfact_bench::env;
use h3dfact_core::{H3dFact, H3dFactConfig};
use hdc::{FactorizationProblem, ProblemSpec};
use resonator::engine::Factorizer;
use resonator::metrics::{accuracy_curve, iterations_to_accuracy};

fn run_curve(bits: u8, trials: usize, budget: usize, spec: ProblemSpec) -> Vec<f64> {
    let mut traces: Vec<Vec<bool>> = Vec::with_capacity(trials);
    for t in 0..trials as u64 {
        let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(6_100 + t));
        let mut cfg = H3dFactConfig::default_for(spec)
            .with_adc_bits(bits)
            .with_max_iters(budget);
        cfg.loop_config.record_trajectory = true;
        let mut engine = H3dFact::new(cfg, t);
        let out = engine.factorize(&p);
        traces.push(out.correct_at);
    }
    accuracy_curve(&traces, budget)
}

fn main() {
    let spec = ProblemSpec::new(3, 16, 256);
    let trials = env::trials(40);
    let budget = 800;

    println!("=== Fig. 6a: factorization accuracy vs iteration, 4-bit vs 8-bit ADC ===");
    println!("problem: F=3, M=16, D=256; {trials} trials; device-accurate engine\n");

    let curve4 = run_curve(4, trials, budget, spec);
    let curve8 = run_curve(8, trials, budget, spec);

    println!("  iter |  4-bit acc |  8-bit acc");
    for &t in &[1usize, 2, 5, 10, 20, 30, 50, 100, 200, 400, 800] {
        if t <= budget {
            println!(
                "  {t:>4} |   {:>6.1} %  |   {:>6.1} %",
                100.0 * curve4[t - 1],
                100.0 * curve8[t - 1]
            );
        }
    }

    let t4 = iterations_to_accuracy(&curve4, 0.99);
    let t8 = iterations_to_accuracy(&curve8, 0.99);
    let show = |t: Option<usize>| {
        t.map(|v| v.to_string())
            .unwrap_or_else(|| "> budget".into())
    };
    println!(
        "\niterations to 99 %: 4-bit {} vs 8-bit {}",
        show(t4),
        show(t8)
    );
    println!("(paper: ~10 vs ~30 — low precision quantization sparsifies + dithers,");
    println!(" so the coarse ADC should reach the accuracy target first)");

    // Secondary check: the 4-bit design costs less area/energy (Table III
    // sensitivity).
    let r4 = arch3d::design::build_report_with(
        arch3d::design::DesignVariant::H3dThreeTier,
        arch3d::ppa::ArchParams {
            adc_bits: 4,
            ..arch3d::ppa::ArchParams::paper()
        },
    );
    let r8 = arch3d::design::build_report_with(
        arch3d::design::DesignVariant::H3dThreeTier,
        arch3d::ppa::ArchParams {
            adc_bits: 8,
            ..arch3d::ppa::ArchParams::paper()
        },
    );
    println!(
        "\nhardware cost of 8-bit readout: area {:+.1} %, energy/iter {:+.1} %",
        100.0 * (r8.total_area_mm2 / r4.total_area_mm2 - 1.0),
        100.0 * (r8.energy_per_iter_j / r4.energy_per_iter_j - 1.0)
    );
}
