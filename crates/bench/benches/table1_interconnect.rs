//! **Table I — H3DFact interconnect specifications** and derived
//! electrical/area figures.
//!
//! The paper's table lists the geometry; this harness echoes it and prints
//! everything the geometry implies for the design: per-TSV RC, switching
//! energy, keep-out area, per-array and per-design TSV counts, and the
//! clock derate that produces Table III's 200 → 185 MHz penalty.

use arch3d::design::{BASE_FREQUENCY_MHZ, NATIVE_PATH_LOAD_F};
use arch3d::tsv::{HybridBondSpec, TsvSpec};
use cim::tech::TechNode;

fn main() {
    let tsv = TsvSpec::paper();
    let bond = HybridBondSpec::paper();

    println!("=== Table I: interconnect specifications (paper inputs) ===");
    println!("TSV diameter {:>6.1} um   | paper: 2 um", tsv.diameter_um);
    println!("TSV pitch    {:>6.1} um   | paper: 4 um", tsv.pitch_um);
    println!(
        "TSV oxide    {:>6.1} nm   | paper: 100 nm",
        tsv.oxide_thickness_nm
    );
    println!("TSV height   {:>6.1} um   | paper: 10 um", tsv.height_um);
    println!(
        "hybrid bond  {:>6.1} um pitch, {:.1} um thick | paper: 10 um / 3 um",
        bond.pitch_um, bond.thickness_um
    );

    println!("\n=== derived electrical figures ===");
    println!(
        "TSV capacitance        {:>8.2} fF",
        tsv.capacitance_f() * 1e15
    );
    println!(
        "TSV resistance         {:>8.2} mOhm",
        tsv.resistance_ohm() * 1e3
    );
    println!(
        "TSV switch energy      {:>8.2} fJ @ {:.1} V",
        tsv.switch_energy_j(TechNode::N40.vdd()) * 1e15,
        TechNode::N40.vdd()
    );
    println!("TSV keep-out area      {:>8.2} um^2", tsv.area_mm2() * 1e6);
    println!(
        "hybrid bond capacitance{:>8.2} fF",
        bond.capacitance_f() * 1e15
    );

    println!("\n=== derived design figures ===");
    let per_array = tsv.count_for_array(256, 256);
    println!("TSVs per 256x256 array  {per_array}  (256 WL + 256 BL + 128 SL)");
    let total = per_array * 4 * 2;
    println!("TSVs per design         {total}  (4 arrays x 2 RRAM tiers; Table III: 5120)");
    println!(
        "TSV silicon overhead    {:.4} mm^2 (keep-out, shared with array margins)",
        total as f64 * tsv.area_mm2()
    );
    let derate = tsv.frequency_derate(NATIVE_PATH_LOAD_F);
    println!(
        "clock derate            {:.3} -> {:.0} MHz from {:.0} MHz (Table III: 185 from 200)",
        derate,
        BASE_FREQUENCY_MHZ * derate,
        BASE_FREQUENCY_MHZ
    );
}
