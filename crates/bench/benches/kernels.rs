//! Criterion micro-benchmarks of the computational kernels: VSA algebra,
//! crossbar MVMs at both fidelities, ADC conversion, one resonator
//! iteration (software and device-accurate), and a thermal solve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cim::adc::{AdcConfig, SarAdc};
use cim::crossbar::{Crossbar, Fidelity};
use cim::noise::NoiseSpec;
use h3dfact::session::BackendKind;
use hdc::rng::rng_from_seed;
use hdc::{BipolarVector, Codebook, FactorizationProblem, ProblemSpec};
use thermal::{solve, Stack};

fn bench_vsa(c: &mut Criterion) {
    let mut rng = rng_from_seed(1);
    let a = BipolarVector::random(1024, &mut rng);
    let b = BipolarVector::random(1024, &mut rng);
    c.bench_function("vsa/bind_1024", |bch| {
        bch.iter(|| black_box(&a).bind(black_box(&b)))
    });
    c.bench_function("vsa/dot_1024", |bch| {
        bch.iter(|| black_box(&a).dot(black_box(&b)))
    });
    let book = Codebook::random(256, 1024, &mut rng);
    c.bench_function("vsa/similarities_256x1024", |bch| {
        bch.iter(|| book.similarities(black_box(&a)))
    });
    let weights: Vec<f64> = (0..256).map(|i| (i % 16) as f64).collect();
    c.bench_function("vsa/project_256x1024", |bch| {
        bch.iter(|| book.project(black_box(&weights)))
    });
}

fn bench_crossbar(c: &mut Criterion) {
    let mut rng = rng_from_seed(2);
    let book = Codebook::random(256, 256, &mut rng);
    let q = BipolarVector::random(256, &mut rng);
    let mut col = Crossbar::program(&book, NoiseSpec::chip_40nm(), Fidelity::Column, 3);
    c.bench_function("crossbar/mvm_column_256x256", |bch| {
        bch.iter(|| col.mvm_bipolar(black_box(&q)))
    });
    let mut cell = Crossbar::program(&book, NoiseSpec::chip_40nm(), Fidelity::Cell, 3);
    c.bench_function("crossbar/mvm_cell_256x256", |bch| {
        bch.iter(|| cell.mvm_bipolar(black_box(&q)))
    });
    let adc = SarAdc::ideal(AdcConfig::paper_4bit(256.0));
    let currents: Vec<f64> = (0..256).map(|i| (i as f64) - 128.0).collect();
    c.bench_function("adc/convert_vector_256", |bch| {
        bch.iter(|| adc.convert_vector(black_box(&currents)))
    });
}

fn bench_engines(c: &mut Criterion) {
    // Every engine through the unified `Box<dyn Backend>` dispatch — the
    // virtual call is nanoseconds against millisecond solves, and one
    // registry keeps the bench honest as engines evolve.
    let spec = ProblemSpec::new(3, 16, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(4));
    for (name, kind, budget) in [
        (
            "engine/baseline_solve_f3_m16_d256",
            BackendKind::Baseline,
            500,
        ),
        (
            "engine/stochastic_solve_f3_m16_d256",
            BackendKind::Stochastic,
            2000,
        ),
        (
            "engine/h3dfact_hw_solve_f3_m16_d256",
            BackendKind::H3dFact,
            2000,
        ),
        ("engine/pcm_2die_solve_f3_m16_d256", BackendKind::Pcm, 2000),
    ] {
        c.bench_function(name, |bch| {
            bch.iter_batched(
                || kind.instantiate(spec, budget, 5, None, None),
                |mut e| e.factorize(black_box(&problem)),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_thermal(c: &mut Criterion) {
    let stack = Stack::paper_h3dfact(0.85);
    let dies = stack.die_layers();
    let (nx, ny) = (12, 12);
    let mut powers = vec![vec![]; stack.layers().len()];
    for &d in &dies {
        powers[d] = vec![0.005 / (nx * ny) as f64; nx * ny];
    }
    c.bench_function("thermal/solve_12x12x10", |bch| {
        bch.iter(|| solve(&stack, nx, ny, black_box(&powers), 25.0, 1e-5, 100_000))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_vsa, bench_crossbar, bench_engines, bench_thermal
}
criterion_main!(kernels);
