//! Criterion micro-benchmarks of the computational kernels: VSA algebra,
//! crossbar MVMs at both fidelities, ADC conversion, one resonator
//! iteration (software and device-accurate), and a thermal solve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cim::adc::{AdcConfig, SarAdc};
use cim::crossbar::{Crossbar, Fidelity};
use cim::noise::NoiseSpec;
use h3dfact::session::BackendKind;
use hdc::rng::rng_from_seed;
use hdc::{BipolarVector, Codebook, FactorizationProblem, ProblemSpec};
use thermal::{solve, Stack};

fn bench_vsa(c: &mut Criterion) {
    let mut rng = rng_from_seed(1);
    let a = BipolarVector::random(1024, &mut rng);
    let b = BipolarVector::random(1024, &mut rng);
    c.bench_function("vsa/bind_1024", |bch| {
        bch.iter(|| black_box(&a).bind(black_box(&b)))
    });
    c.bench_function("vsa/dot_1024", |bch| {
        bch.iter(|| black_box(&a).dot(black_box(&b)))
    });
    let book = Codebook::random(256, 1024, &mut rng);
    c.bench_function("vsa/similarities_256x1024", |bch| {
        bch.iter(|| book.similarities(black_box(&a)))
    });
    let weights: Vec<f64> = (0..256).map(|i| (i % 16) as f64).collect();
    c.bench_function("vsa/project_256x1024", |bch| {
        bch.iter(|| book.project(black_box(&weights)))
    });
}

/// The packed-kernel group added with the allocation-free hot path: packed
/// vs per-vector similarity MVM, alloc-free vs allocating iteration
/// round-trip, and parallel vs sequential session batches. The workload
/// bodies live in `h3dfact_bench::kernels`, shared with the
/// `bench_kernels` harness bin.
fn bench_kernels_packed(c: &mut Criterion) {
    use h3dfact_bench::kernels;
    let fx = kernels::fixture();

    c.bench_function("kernels_packed/similarities_pervector_256x1024", |bch| {
        let mut out = vec![0.0f64; kernels::M];
        bch.iter(|| {
            kernels::similarities_pervector(black_box(&fx), &mut out);
            black_box(out[kernels::M - 1])
        })
    });
    c.bench_function("kernels_packed/similarities_packed_256x1024", |bch| {
        let mut out = vec![0.0f64; kernels::M];
        bch.iter(|| {
            kernels::similarities_packed(black_box(&fx), &mut out);
            black_box(out[kernels::M - 1])
        })
    });

    // One similarity→projection round-trip (the resonator inner loop body
    // minus unbind): allocating reference vs the scratch-buffer path.
    c.bench_function("kernels_packed/iteration_allocating_256x1024", |bch| {
        bch.iter(|| kernels::iteration_allocating(black_box(&fx)))
    });
    c.bench_function("kernels_packed/iteration_allocfree_256x1024", |bch| {
        let mut scratch = kernels::iteration_scratch();
        bch.iter(|| {
            kernels::iteration_allocfree(black_box(&fx), &mut scratch);
            black_box(scratch.estimate.words()[0])
        })
    });

    // Session-level batch: sequential vs the deterministic worker pool.
    for (name, threads) in [
        ("kernels_packed/batch8_sequential", 1usize),
        ("kernels_packed/batch8_threads4", 4usize),
    ] {
        c.bench_function(name, |bch| {
            bch.iter_batched(
                || kernels::batch_session(threads, 500),
                |mut session| session.run(8),
                BatchSize::SmallInput,
            )
        });
    }
}

/// The batched bit-GEMM group added with the lockstep batching PR: the
/// matrix–matrix similarity kernel against the per-query loop at both
/// dispatch regimes (cache-resident and streaming), the batched
/// projection, and the lockstep resonator against sequential engine
/// calls. Workload bodies live in `h3dfact_bench::kernels`, shared with
/// the `bench_kernels` harness bin so the two can never drift apart.
fn bench_kernels_batched(c: &mut Criterion) {
    use h3dfact_bench::kernels;
    use resonator::engine::Factorizer;

    for (m, d, label) in [
        (kernels::M, kernels::D, "resident"),
        (kernels::M_STREAMING, kernels::D_STREAMING, "streaming"),
    ] {
        let bfx = kernels::batch_fixture(m, d, 8);
        let mut out = vec![0.0f64; 8 * m];
        c.bench_function(
            &format!("kernels_batched/similarities_perquery8_{label}"),
            |bch| {
                bch.iter(|| {
                    kernels::similarities_perquery_loop(black_box(&bfx), &mut out);
                    black_box(out[8 * m - 1])
                })
            },
        );
        c.bench_function(
            &format!("kernels_batched/similarities_batched8_{label}"),
            |bch| {
                bch.iter(|| {
                    kernels::similarities_batched(black_box(&bfx), &mut out);
                    black_box(out[8 * m - 1])
                })
            },
        );
    }

    let fx = kernels::fixture();
    let weights: Vec<f64> = (0..8).flat_map(|_| fx.weights.clone()).collect();
    let mut sums = vec![0.0f64; 8 * kernels::D];
    c.bench_function("kernels_batched/weighted_sums_batched8_256x1024", |bch| {
        bch.iter(|| {
            fx.book
                .packed()
                .weighted_sums_batch_into(black_box(&weights), &mut sums);
            black_box(sums[8 * kernels::D - 1])
        })
    });

    let (books, items, engine) = kernels::lockstep_fixture(8);
    let queries: Vec<(&hdc::BipolarVector, Option<&[usize]>)> = items
        .iter()
        .map(|i| (&i.query, i.truth.as_deref()))
        .collect();
    c.bench_function("kernels_batched/resonator_sequential8_f3_m8_d256", |bch| {
        let mut eng = engine;
        bch.iter(|| {
            eng.set_run_cursor(0);
            for i in &items {
                black_box(eng.factorize_query(&books, &i.query, i.truth.as_deref()));
            }
        })
    });
    c.bench_function("kernels_batched/resonator_lockstep8_f3_m8_d256", |bch| {
        let mut eng = engine;
        bch.iter(|| {
            eng.set_run_cursor(0);
            black_box(eng.factorize_lockstep(&books, &queries));
        })
    });
}

fn bench_crossbar(c: &mut Criterion) {
    let mut rng = rng_from_seed(2);
    let book = Codebook::random(256, 256, &mut rng);
    let q = BipolarVector::random(256, &mut rng);
    let mut col = Crossbar::program(&book, NoiseSpec::chip_40nm(), Fidelity::Column, 3);
    c.bench_function("crossbar/mvm_column_256x256", |bch| {
        bch.iter(|| col.mvm_bipolar(black_box(&q)))
    });
    let mut cell = Crossbar::program(&book, NoiseSpec::chip_40nm(), Fidelity::Cell, 3);
    c.bench_function("crossbar/mvm_cell_256x256", |bch| {
        bch.iter(|| cell.mvm_bipolar(black_box(&q)))
    });
    let adc = SarAdc::ideal(AdcConfig::paper_4bit(256.0));
    let currents: Vec<f64> = (0..256).map(|i| (i as f64) - 128.0).collect();
    c.bench_function("adc/convert_vector_256", |bch| {
        bch.iter(|| adc.convert_vector(black_box(&currents)))
    });
}

fn bench_engines(c: &mut Criterion) {
    // Every engine through the unified `Box<dyn Backend>` dispatch — the
    // virtual call is nanoseconds against millisecond solves, and one
    // registry keeps the bench honest as engines evolve.
    let spec = ProblemSpec::new(3, 16, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(4));
    for (name, kind, budget) in [
        (
            "engine/baseline_solve_f3_m16_d256",
            BackendKind::Baseline,
            500,
        ),
        (
            "engine/stochastic_solve_f3_m16_d256",
            BackendKind::Stochastic,
            2000,
        ),
        (
            "engine/h3dfact_hw_solve_f3_m16_d256",
            BackendKind::H3dFact,
            2000,
        ),
        ("engine/pcm_2die_solve_f3_m16_d256", BackendKind::Pcm, 2000),
    ] {
        c.bench_function(name, |bch| {
            bch.iter_batched(
                || kind.instantiate(spec, budget, 5, None, None),
                |mut e| e.factorize(black_box(&problem)),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_thermal(c: &mut Criterion) {
    let stack = Stack::paper_h3dfact(0.85);
    let dies = stack.die_layers();
    let (nx, ny) = (12, 12);
    let mut powers = vec![vec![]; stack.layers().len()];
    for &d in &dies {
        powers[d] = vec![0.005 / (nx * ny) as f64; nx * ny];
    }
    c.bench_function("thermal/solve_12x12x10", |bch| {
        bch.iter(|| solve(&stack, nx, ny, black_box(&powers), 25.0, 1e-5, 100_000))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_vsa, bench_kernels_packed, bench_crossbar, bench_engines, bench_thermal
}
criterion_group! {
    name = kernels_batched;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels_batched
}
criterion_main!(kernels, kernels_batched);
