//! **Sec. IV-A ablation — design-methodology generalization**: sweep the
//! hardware parameters (`d` rows per subarray, `f` subarrays per tier, ADC
//! resolution) around the paper's d=256 / f=4 / 4-bit design point and
//! print the PPA landscape with its Pareto frontier.

use arch3d::explore::{explore, pareto_frontier, ExploreConfig};

fn main() {
    let points = explore(&ExploreConfig::paper_neighbourhood());
    let frontier = pareto_frontier(&points);
    println!("=== design-space sweep (H3D variant) ===");
    println!(
        "{:>5} {:>3} {:>4} | {:>9} {:>8} {:>11} {:>10} {:>8}",
        "d", "f", "adc", "area mm2", "TOPS", "TOPS/mm2", "TOPS/W", "pareto"
    );
    for p in &points {
        let on_frontier = frontier.iter().any(|q| q == p);
        let marker = if p.rows == 256 && p.subarrays == 4 && p.adc_bits == 4 {
            "  <- paper point"
        } else {
            ""
        };
        println!(
            "{:>5} {:>3} {:>4} | {:>9.3} {:>8.2} {:>11.1} {:>10.1} {:>8}{}",
            p.rows,
            p.subarrays,
            p.adc_bits,
            p.report.total_area_mm2,
            p.report.throughput_tops,
            p.report.compute_density_tops_mm2,
            p.report.energy_eff_tops_w,
            if on_frontier { "*" } else { "" },
            marker,
        );
    }
    println!(
        "\n{} points, {} on the density/efficiency Pareto frontier (*)",
        points.len(),
        frontier.len()
    );
    println!("8-bit readout is dominated everywhere (area+energy, no throughput gain);");
    println!("the paper's d=256/f=4/4-bit point sits on or near the frontier.");
}
