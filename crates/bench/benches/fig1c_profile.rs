//! **Fig. 1c — characterization of the factorization operations**: the
//! runtime share of the similarity/projection MVMs (paper: ≈80 % of
//! compute time) and the accuracy collapse of the deterministic baseline
//! with growing problem size.

use h3dfact_bench::env;
use hdc::{FactorizationProblem, ProblemSpec};
use resonator::engine::{Factorizer, LoopConfig};
use resonator::{measure_cell, BaselineResonator, SweepConfig};

fn main() {
    // Part 1: operation-level runtime profile (larger M so the MVMs carry
    // realistic weight relative to bookkeeping).
    println!("=== Fig. 1c (left): runtime share of factorization operations ===");
    println!("(wall-clock over solved runs; paper reports ~80 % in similarity+projection MVMs)");
    for (f, m, d) in [(3usize, 64usize, 1024usize), (4, 64, 1024), (3, 128, 1024)] {
        let spec = ProblemSpec::new(f, m, d);
        let mut cfg = LoopConfig::baseline(1_000);
        cfg.record_trajectory = false;
        let mut times = resonator::engine::PhaseTimes::default();
        let trials = 8;
        for t in 0..trials {
            let p =
                FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(100 + t as u64));
            let mut engine = BaselineResonator::with_config(cfg, t as u64);
            let out = engine.factorize(&p);
            times.unbind += out.times.unbind;
            times.similarity += out.times.similarity;
            times.projection += out.times.projection;
            times.other += out.times.other;
        }
        let total = times.total().as_secs_f64().max(1e-12);
        println!(
            "F={f} M={m:>3} D={d}: similarity {:>4.1} % | projection {:>4.1} % | unbind {:>4.1} % | other {:>4.1} %  => MVM share {:>4.1} %",
            100.0 * times.similarity.as_secs_f64() / total,
            100.0 * times.projection.as_secs_f64() / total,
            100.0 * times.unbind.as_secs_f64() / total,
            100.0 * times.other.as_secs_f64() / total,
            100.0 * times.mvm_fraction(),
        );
    }

    // Part 2: baseline accuracy vs problem size (the motivation for
    // stochasticity).
    println!("\n=== Fig. 1c (right): deterministic accuracy vs problem size ===");
    let dim = 256;
    let trials = env::trials(24);
    let threads = env::threads();
    for m in [8usize, 16, 32, 48, 64, 96] {
        let spec = ProblemSpec::new(3, m, dim);
        let budget = 5_000;
        let cell = measure_cell(
            spec,
            &SweepConfig::parallel(trials, budget, 0xF16C + m as u64, threads),
            |s| Box::new(BaselineResonator::new(budget, s)),
        );
        let bars = (cell.accuracy() * 40.0).round() as usize;
        println!(
            "  M={m:>3} (search space {:>10}): {:>5.1} % |{}|",
            spec.search_space(),
            100.0 * cell.accuracy(),
            "#".repeat(bars)
        );
    }
    println!("(accuracy collapses as M grows — the limit-cycle problem the paper motivates)");
}
