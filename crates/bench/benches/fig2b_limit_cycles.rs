//! **Fig. 2b — stochasticity breaks limit cycles.**
//!
//! The figure contrasts the factorizer's trajectory with and without the
//! hardware's intrinsic noise, everything else (4-bit quantized readout)
//! equal. Without noise the deterministic quantized dynamics frequently
//! collapse into an absorbing state — the activation zeroes out and the
//! estimates stop moving (a period-1 limit cycle) — or revisit longer
//! orbits; with device noise the same instances escape and converge
//! (paper Sec. III-C).
//!
//! Three parts: (1) stuck-state statistics of the noise-free twin vs the
//! stochastic engine on identical instances; (2) failure anatomy of the
//! classic identity-activation baseline (wrong fixed points and budget-
//! exhausting wandering — the Table II collapse); (3) a noise-amplitude
//! ablation locating how much stochasticity is needed.

use h3dfact_bench::env;
use hdc::{FactorizationProblem, ProblemSpec};
use resonator::engine::{CycleAction, DegeneratePolicy, Factorizer, UpdateOrder};
use resonator::{Activation, BaselineResonator, LoopConfig, StochasticResonator};

/// The noise-free twin of the stochastic engine: same 4-bit quantized
/// activation, but zero device noise and no random exploration.
fn deterministic_quantized(spec: ProblemSpec, budget: usize, seed: u64) -> StochasticResonator {
    let mut cfg = LoopConfig::stochastic(budget);
    cfg.degenerate = DegeneratePolicy::KeepPrevious;
    cfg.cycle_action = CycleAction::Abort;
    cfg.stop_on_fixed_point = true;
    StochasticResonator::with_parts(
        cfg,
        0.0,
        Activation::noise_referenced(4, spec.dim, StochasticResonator::DEFAULT_LSB_SIGMAS),
        seed,
    )
}

fn main() {
    let trials = env::trials(40);
    let budget = 4_000;

    println!("=== Fig. 2b: limit cycles (deterministic) vs break-free (stochastic) ===\n");
    println!("part 1: 4-bit quantized dynamics, noise OFF vs noise ON, same instances");
    for m in [24usize, 32, 40] {
        let spec = ProblemSpec::new(3, m, 256);
        let (mut det_solved, mut det_stuck, mut stoch_solved) = (0, 0, 0);
        let mut stuck_at: Vec<usize> = Vec::new();
        for t in 0..trials as u64 {
            let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(2_600 + t));
            let mut det = deterministic_quantized(spec, budget, t);
            let od = det.factorize(&p);
            if od.solved {
                det_solved += 1;
            } else if od.cycle.is_some() || od.converged {
                det_stuck += 1;
                stuck_at.push(od.iterations);
            }
            let mut stoch = StochasticResonator::paper_default(spec, budget, 77 + t);
            if stoch.factorize(&p).solved {
                stoch_solved += 1;
            }
        }
        stuck_at.sort_unstable();
        let median_stuck = stuck_at.get(stuck_at.len() / 2).copied().unwrap_or(0);
        println!(
            "  M={m:>2}: noise OFF {det_solved:>2}/{trials} solved, {det_stuck:>2} stuck in an absorbing state (median at iter {median_stuck}) | noise ON {stoch_solved:>2}/{trials} solved"
        );
    }

    println!("\npart 2: identity-activation baseline failure anatomy (M=48)");
    let spec = ProblemSpec::new(3, 48, 256);
    let (mut solved, mut cycles, mut fixed, mut wander) = (0, 0, 0, 0);
    for t in 0..trials as u64 {
        let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(2_600 + t));
        let mut cfg = LoopConfig::baseline(budget);
        cfg.update_order = UpdateOrder::Synchronous; // the paper's equations
        let mut base = BaselineResonator::with_config(cfg, t);
        let o = base.factorize(&p);
        if o.solved {
            solved += 1;
        } else if o.cycle.is_some() {
            cycles += 1;
        } else if o.converged {
            fixed += 1;
        } else {
            wander += 1;
        }
    }
    println!(
        "  solved {solved} | cycle-terminated {cycles} | wrong fixed point {fixed} | budget-exhausting wander {wander}"
    );
    println!("  (beyond capacity the deterministic search repeats unproductive regions");
    println!("   of the state space either way — stochasticity is the escape hatch)");

    println!("\npart 3: noise-amplitude ablation (M=32, stochastic engine)");
    let spec = ProblemSpec::new(3, 32, 256);
    let dim_sigma = (spec.dim as f64).sqrt();
    for scale in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut ok = 0usize;
        for t in 0..trials as u64 {
            let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(2_600 + t));
            let mut eng = StochasticResonator::with_parts(
                LoopConfig::stochastic(budget),
                StochasticResonator::CHIP_CELL_SIGMA * dim_sigma * scale,
                Activation::noise_referenced(4, spec.dim, StochasticResonator::DEFAULT_LSB_SIGMAS),
                991 + t,
            );
            if eng.factorize(&p).solved {
                ok += 1;
            }
        }
        println!(
            "  noise x{scale:<4}: {ok:>2}/{trials} solved |{}|",
            "#".repeat(ok * 40 / trials)
        );
    }
    println!("\n(at x0 the only stochasticity left is the random-sparse exploration on");
    println!(" degenerate activations; device noise adds the dithering that keeps");
    println!(" borderline candidates cycling through the ADC's first code — Sec. III-C)");
}
