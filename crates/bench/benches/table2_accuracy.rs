//! **Table II — factorization accuracy and operational capacity**:
//! baseline resonator vs H3DFact across problem sizes.
//!
//! The paper sweeps the per-attribute codebook size (its "D" column; `M`
//! here) for F ∈ {3, 4} and reports (a) accuracy and (b) iterations to
//! reach ≥99 % accuracy. The qualitative claim: the deterministic baseline
//! collapses beyond a modest `M` (limit cycles), while the stochastic
//! factorizer keeps ~99 % accuracy with an iteration count that grows with
//! the problem — an operational-capacity gap of orders of magnitude.
//!
//! Scale: the default grid runs at the hardware dimension D = 256 with
//! `M ≤ 64` and bounded budgets (minutes); `H3DFACT_FULL=1` unlocks the
//! larger grid (hours). The sweep uses the software stochastic model
//! (statistically validated against the device-accurate engine by
//! `hardware_matches_software_model_statistically` in `h3dfact-core` and
//! the cross-engine integration test); one hardware spot check is run at
//! the end.

use h3dfact::session::{BackendKind, Session};
use h3dfact_bench::env;
use hdc::ProblemSpec;
use resonator::{measure_cell, SweepConfig};

fn fmt_iters(cell: &resonator::CapacityCell) -> String {
    if cell.meets_99() {
        match cell.mean_iterations() {
            Some(m) => format!("{m:>9.0}"),
            None => "        -".into(),
        }
    } else {
        "     Fail".into()
    }
}

fn main() {
    let dim = 256;
    let full = env::full_scale();
    let trials = env::trials(if full { 100 } else { 24 });
    let threads = env::threads();
    let grid_f3: Vec<(usize, usize)> = if full {
        vec![
            (16, 2_000),
            (32, 4_000),
            (64, 8_000),
            (128, 40_000),
            (256, 120_000),
        ]
    } else {
        vec![
            (8, 2_000),
            (16, 3_000),
            (24, 4_000),
            (32, 5_000),
            (48, 6_000),
            (64, 8_000),
        ]
    };
    let grid_f4: Vec<(usize, usize)> = if full {
        vec![(16, 6_000), (32, 20_000), (64, 80_000), (128, 300_000)]
    } else {
        vec![(8, 6_000), (16, 8_000), (24, 12_000), (32, 16_000)]
    };

    println!("=== Table II: accuracy & operational capacity (D = {dim}, {trials} trials/cell) ===");
    println!("(paper's \"D\" column is the codebook size; printed as M here)");
    println!();
    println!("         |--- accuracy (%) ---|    |--- iterations to >=99 % ---|");
    println!("  F   M  | baseline     H3D   |    | baseline          H3D      |");

    for (f, grid) in [(3usize, &grid_f3), (4usize, &grid_f4)] {
        for &(m, budget) in grid {
            let spec = ProblemSpec::new(f, m, dim);
            let cfg = SweepConfig::parallel(trials, budget, 0xBEEF + m as u64, threads);
            let base = measure_cell(spec, &cfg, |s| {
                BackendKind::Baseline.instantiate(spec, budget, s, None, None)
            });
            let stoch = measure_cell(spec, &cfg, |s| {
                BackendKind::Stochastic.instantiate(spec, budget, s, None, None)
            });
            println!(
                "  {f}  {m:>3} |  {:>6.1}   {:>6.1}   |    | {}   {}   |",
                100.0 * base.accuracy(),
                100.0 * stoch.accuracy(),
                fmt_iters(&base),
                fmt_iters(&stoch),
            );
        }
        println!();
    }

    // Operational-capacity summary: largest M each engine solves at >=99 %.
    println!("paper shape check: baseline fails beyond small M; H3D extends the");
    println!("solvable range by orders of magnitude in search-space size M^F,");
    println!("with iteration counts growing steeply (paper: up to 2.8M iterations");
    println!("at F=4, M=512 — unlock with H3DFACT_FULL=1).");

    // Hardware spot check: the device-accurate engine at one mid-grid
    // cell, through the unified Session entry point.
    let spec = ProblemSpec::new(3, 16, dim);
    let n = 10;
    let report = Session::builder()
        .spec(spec)
        .backend(BackendKind::H3dFact)
        .seed(7_000)
        .max_iters(3_000)
        .build()
        .run(n);
    println!(
        "\nhardware spot check (h3dfact-3d backend, F=3, M=16): {}/{n} solved",
        report.solved
    );
}
