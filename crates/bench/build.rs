//! Captures the effective `-C target-cpu=…` flag at compile time so the
//! bench harness can stamp it into `BENCH_kernels.json` provenance —
//! numbers produced under `target-cpu=native` (the workspace default, see
//! `.cargo/config.toml`) are not comparable across hosts, and the portable
//! CI build (`RUSTFLAGS=""`) must be distinguishable from it.

fn main() {
    println!("cargo:rerun-if-env-changed=CARGO_ENCODED_RUSTFLAGS");
    println!("cargo:rerun-if-env-changed=RUSTFLAGS");
    // Cargo hands build scripts the final rustflags (config-file flags
    // included) as a 0x1f-separated list; a plain RUSTFLAGS override is
    // the fallback for non-cargo drivers.
    let flags: Vec<String> = std::env::var("CARGO_ENCODED_RUSTFLAGS")
        .map(|v| v.split('\x1f').map(str::to_string).collect())
        .or_else(|_| {
            std::env::var("RUSTFLAGS").map(|v| v.split_whitespace().map(str::to_string).collect())
        })
        .unwrap_or_default();
    let mut target_cpu = String::from("generic");
    for (i, flag) in flags.iter().enumerate() {
        if let Some(cpu) = flag.strip_prefix("-Ctarget-cpu=") {
            target_cpu = cpu.to_string();
        } else if flag == "-C" {
            if let Some(cpu) = flags.get(i + 1).and_then(|f| f.strip_prefix("target-cpu=")) {
                target_cpu = cpu.to_string();
            }
        }
    }
    println!("cargo:rustc-env=H3DFACT_TARGET_CPU={target_cpu}");
}
