//! Cycle structure of the *quantized deterministic* dynamics (4-bit ADC,
//! no noise, keep-previous degenerate policy) — the noise-free twin of the
//! H3DFact hardware that Fig. 2b contrasts against.
use hdc::{FactorizationProblem, ProblemSpec};
use resonator::engine::{DegeneratePolicy, Factorizer, UpdateOrder};
use resonator::{Activation, LoopConfig, StochasticResonator};

fn main() {
    for order in [UpdateOrder::Synchronous, UpdateOrder::Sequential] {
        println!("--- quantized deterministic, {order:?} ---");
        for m in [24usize, 32, 40, 48, 64] {
            let spec = ProblemSpec::new(3, m, 256);
            let (mut solved, mut cycles, mut fixed, mut wander) = (0, 0, 0, 0);
            let mut periods = vec![];
            for t in 0..50u64 {
                let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(4000 + t));
                let mut cfg = LoopConfig::stochastic(3000);
                cfg.update_order = order;
                cfg.degenerate = DegeneratePolicy::KeepPrevious;
                cfg.cycle_action = resonator::engine::CycleAction::Abort;
                cfg.stop_on_fixed_point = true;
                let mut e = StochasticResonator::with_parts(
                    cfg,
                    0.0, // no device noise
                    Activation::noise_referenced(4, spec.dim, 3.0),
                    t,
                );
                let o = e.factorize(&p);
                if o.solved {
                    solved += 1;
                } else if let Some(c) = o.cycle {
                    cycles += 1;
                    periods.push(c.period());
                } else if o.converged {
                    fixed += 1;
                } else {
                    wander += 1;
                }
            }
            periods.sort();
            println!("  M={m:>3}: solved {solved:>2} cycles {cycles:>2} fixed {fixed:>2} wander {wander:>2}  periods {:?}", &periods[..periods.len().min(10)]);
        }
    }
}
