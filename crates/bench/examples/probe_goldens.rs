//! One-shot probe that prints the golden table for `tests/goldens.rs`.

use h3dfact::perception::{AttributeSchema, NeuralFrontend};
use h3dfact::prelude::*;
use h3dfact::workload::Workload;

fn session(spec: ProblemSpec, kind: BackendKind) -> Session {
    Session::builder()
        .spec(spec)
        .backend(kind)
        .seed(101)
        .max_iters(600)
        .build()
}

fn main() {
    let kinds = [
        BackendKind::Baseline,
        BackendKind::Stochastic,
        BackendKind::H3dFact,
    ];
    for kind in kinds {
        let mk: Vec<(&str, Box<dyn Workload>, usize)> = vec![
            (
                "random",
                Box::new(RandomFactorization::new(ProblemSpec::new(3, 8, 256), 201)),
                6,
            ),
            (
                "perception",
                Box::new(Perception::attributes(
                    AttributeSchema::raven(),
                    256,
                    NeuralFrontend::paper_quality(5),
                    202,
                )),
                4,
            ),
            (
                "integer",
                Box::new(IntegerFactorization::new(30, 256, 203)),
                4,
            ),
            (
                "capacity",
                Box::new(CapacitySweep::new(ProblemSpec::new(3, 8, 256), 204)),
                4,
            ),
        ];
        for (label, mut w, n) in mk {
            let mut s = session(w.spec(), kind);
            let r = s.run_workload(&mut *w, n);
            print!(
                "(\"{label}\", BackendKind::{kind:?}, {n}, {:.17}, {}, {}, &[",
                r.score, r.session.solved, r.session.total_iterations
            );
            for (name, v) in &r.metrics {
                print!("(\"{name}\", {v:.17}), ");
            }
            println!("]),");
        }
    }
}
