//! Shape probe for the batched bit-GEMM: batched vs per-query similarity
//! across codebook footprints, for tuning `GEMM_STREAM_BYTES`-style
//! dispatch thresholds on a new host. Asserts bit-identity at every
//! shape.
//!
//! ```sh
//! cargo run --release -p h3dfact_bench --example probe_gemm
//! ```

use std::hint::black_box;
use std::time::Instant;

use hdc::rng::rng_from_seed;
use hdc::{BipolarVector, Codebook, PackedBatch};

fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut s: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    s.sort_by(|a, b| a.total_cmp(b));
    s[1]
}

fn main() {
    for (m, d) in [
        (256usize, 1024usize),
        (256, 2048),
        (256, 4096),
        (512, 4096),
        (1024, 8192),
    ] {
        let mut rng = rng_from_seed(1);
        let book = Codebook::random(m, d, &mut rng);
        for b in [4usize, 8] {
            let queries: Vec<BipolarVector> =
                (0..b).map(|_| BipolarVector::random(d, &mut rng)).collect();
            let batch = PackedBatch::from_queries(&queries);
            let mut out_pq = vec![0.0f64; b * m];
            let mut out_b = vec![0.0f64; b * m];
            let reps = (2_000_000_000 / (m * d * b)).clamp(10, 2000);
            let pq = time_ns(reps, || {
                for (i, q) in queries.iter().enumerate() {
                    book.packed()
                        .similarities_into(q, &mut out_pq[i * m..(i + 1) * m]);
                }
                black_box(out_pq[b * m - 1]);
            }) / b as f64;
            let bt = time_ns(reps, || {
                book.packed().similarities_batch_into(&batch, &mut out_b);
                black_box(out_b[b * m - 1]);
            }) / b as f64;
            assert!(out_pq
                .iter()
                .zip(&out_b)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
            println!(
                "m={m:5} d={d:5} b={b:2}  perquery {pq:9.1} ns/q  batched {bt:9.1} ns/q  speedup {:.2}",
                pq / bt
            );
        }
    }
}
