//! Where do deterministic limit cycles actually occur? Scan problem sizes
//! and count cycle-terminated vs fixed-point vs wandering failures.
use hdc::{FactorizationProblem, ProblemSpec};
use resonator::engine::{Factorizer, UpdateOrder};
use resonator::{BaselineResonator, LoopConfig};

fn main() {
    for order in [UpdateOrder::Synchronous, UpdateOrder::Sequential] {
        println!("--- {order:?} ---");
        for m in [24usize, 32, 40, 48, 64, 96] {
            let spec = ProblemSpec::new(3, m, 256);
            let (mut solved, mut cycles, mut fixed, mut wander) = (0, 0, 0, 0);
            let mut periods = vec![];
            for t in 0..50u64 {
                let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(4000 + t));
                let mut cfg = LoopConfig::baseline(3000);
                cfg.update_order = order;
                let mut e = BaselineResonator::with_config(cfg, t);
                let o = e.factorize(&p);
                if o.solved {
                    solved += 1;
                } else if let Some(c) = o.cycle {
                    cycles += 1;
                    periods.push(c.period());
                } else if o.converged {
                    fixed += 1;
                } else {
                    wander += 1;
                }
            }
            periods.sort();
            println!("  M={m:>3}: solved {solved:>2} cycles {cycles:>2} fixed {fixed:>2} wander {wander:>2}  periods {:?}", &periods[..periods.len().min(8)]);
        }
    }
}
