//! Shared helpers for the benchmark harness (see `benches/`).
//!
//! Each paper table/figure has a dedicated `harness = false` bench target
//! that prints the regenerated rows; `benches/kernels.rs` holds the
//! Criterion micro-benchmarks.

pub mod kernels {
    //! The packed-kernel microbench workloads, shared by the
    //! `kernels_packed` Criterion group (`benches/kernels.rs`) and the
    //! `bench_kernels` harness bin (which writes `BENCH_kernels.json`) so
    //! the two can never drift apart.

    use hdc::rng::rng_from_seed;
    use hdc::{BipolarVector, Codebook, PackedBatch};

    /// Codebook rows `M` of the microbench shape.
    pub const M: usize = 256;
    /// Hypervector dimension `D` of the microbench shape.
    pub const D: usize = 1024;

    /// One fixture: the codebook, a query, and the mid-weight vector the
    /// projection benches drive (`w_j = j mod 16`, the shape of a coarse
    /// ADC readout).
    pub struct Fixture {
        /// The `M × D` codebook.
        pub book: Codebook,
        /// A random query vector.
        pub query: BipolarVector,
        /// Projection weights.
        pub weights: Vec<f64>,
    }

    /// Builds the standard `M = 256`, `D = 1024` fixture.
    pub fn fixture() -> Fixture {
        let mut rng = rng_from_seed(1);
        let book = Codebook::random(M, D, &mut rng);
        let query = BipolarVector::random(D, &mut rng);
        let weights = (0..M).map(|i| (i % 16) as f64).collect();
        Fixture {
            book,
            query,
            weights,
        }
    }

    /// Per-vector similarity baseline: one `BipolarVector::dot` per
    /// codevector (the pre-packed software path), written into `out`.
    pub fn similarities_pervector(fx: &Fixture, out: &mut [f64]) {
        for (o, v) in out.iter_mut().zip(fx.book.vectors()) {
            *o = v.dot(&fx.query) as f64;
        }
    }

    /// Packed similarity MVM into `out`.
    pub fn similarities_packed(fx: &Fixture, out: &mut [f64]) {
        fx.book.packed().similarities_into(&fx.query, out);
    }

    /// Allocating iteration round-trip (similarity + projection +
    /// re-sign), the seed-era kernel shape: fresh vectors every call.
    pub fn iteration_allocating(fx: &Fixture) -> BipolarVector {
        let sims: Vec<f64> = fx
            .book
            .vectors()
            .iter()
            .map(|v| v.dot(&fx.query) as f64)
            .collect();
        std::hint::black_box(&sims);
        let sums = hdc::ops::weighted_sums(fx.book.vectors(), &fx.weights);
        BipolarVector::from_reals_sign(&sums)
    }

    /// Scratch reused by [`iteration_allocfree`].
    pub struct IterationScratch {
        /// Similarity weights (`M`).
        pub sims: Vec<f64>,
        /// Projection sums (`D`).
        pub sums: Vec<f64>,
        /// The re-signed estimate.
        pub estimate: BipolarVector,
    }

    /// Builds the scratch for the alloc-free round-trip.
    pub fn iteration_scratch() -> IterationScratch {
        IterationScratch {
            sims: vec![0.0f64; M],
            sums: vec![0.0f64; D],
            estimate: BipolarVector::ones(D),
        }
    }

    /// Allocation-free iteration round-trip through the packed kernels
    /// and caller-owned scratch.
    pub fn iteration_allocfree(fx: &Fixture, scratch: &mut IterationScratch) {
        fx.book
            .packed()
            .similarities_into(&fx.query, &mut scratch.sims);
        std::hint::black_box(&scratch.sims);
        fx.book
            .packed()
            .weighted_sums_into(&fx.weights, &mut scratch.sums);
        scratch.estimate.assign_signs_of_reals(&scratch.sums);
    }

    /// The batch-executor session of the microbench: stochastic backend,
    /// `F = 3`, `M = 8`, `D = 256`, at the given worker-thread count.
    pub fn batch_session(threads: usize, max_iters: usize) -> h3dfact::session::Session {
        h3dfact::session::Session::builder()
            .spec(hdc::ProblemSpec::new(3, 8, 256))
            .backend(h3dfact::session::BackendKind::Stochastic)
            .seed(7)
            .max_iters(max_iters)
            .threads(threads)
            .build()
    }

    /// Query-batch sizes of the batched bit-GEMM table (`B = 1` pins the
    /// batching overhead floor; 8 is the service's default micro-batch;
    /// 16 shows the diminishing-returns tail).
    pub const BATCH_SIZES: [usize; 4] = [1, 4, 8, 16];

    /// Shape of the streaming-regime batched fixture: at `M = 1024`,
    /// `D = 8192` the codebook's lane mirror (1 MiB) decisively exceeds
    /// [`hdc::packed::PackedCodebook::batch_streams_codebook`]'s
    /// threshold and the last-level-resident working set of typical
    /// hosts, so the per-query path re-streams it per query while the
    /// bit-GEMM tiles it once per column group — the regime the batched
    /// kernels exist for. (Shapes near the L2 boundary, 64–256 KiB,
    /// time bimodally on shared vCPUs and make the comparison noisy.)
    pub const M_STREAMING: usize = 1024;
    /// See [`M_STREAMING`].
    pub const D_STREAMING: usize = 8192;

    /// A `B`-query batch over one codebook, packed both ways (separate
    /// vectors for the per-query baseline, a [`PackedBatch`] for the
    /// bit-GEMM).
    pub struct BatchFixture {
        /// The `M × D` codebook.
        pub book: Codebook,
        /// The `B` query vectors.
        pub queries: Vec<BipolarVector>,
        /// The same queries packed lane-major.
        pub batch: PackedBatch,
    }

    /// Builds a `B`-query batched fixture at `m × d` (`M × D` for the
    /// cache-resident regime, [`M_STREAMING`] × [`D_STREAMING`] for the
    /// streaming regime).
    pub fn batch_fixture(m: usize, d: usize, b: usize) -> BatchFixture {
        let mut rng = rng_from_seed(2);
        let book = Codebook::random(m, d, &mut rng);
        let queries: Vec<BipolarVector> =
            (0..b).map(|_| BipolarVector::random(d, &mut rng)).collect();
        let batch = PackedBatch::from_queries(&queries);
        BatchFixture {
            book,
            queries,
            batch,
        }
    }

    /// Per-query baseline at batch shape: `B` sequential packed
    /// similarity MVMs, each re-streaming the codebook (`out` is
    /// query-major `B × M`).
    pub fn similarities_perquery_loop(fx: &BatchFixture, out: &mut [f64]) {
        let m = fx.book.len();
        for (b, q) in fx.queries.iter().enumerate() {
            fx.book
                .packed()
                .similarities_into(q, &mut out[b * m..(b + 1) * m]);
        }
    }

    /// The batched bit-GEMM over the same queries (`out` query-major
    /// `B × M`).
    pub fn similarities_batched(fx: &BatchFixture, out: &mut [f64]) {
        fx.book.packed().similarities_batch_into(&fx.batch, out);
    }

    /// Projection weights with exactly `active` non-zero entries (evenly
    /// spread), for sweeping the sparse/dense regime crossover.
    pub fn weights_with_active(active: usize) -> Vec<f64> {
        let mut w = vec![0.0f64; M];
        if active == 0 {
            return w;
        }
        for k in 0..active.min(M) {
            w[k * M / active.min(M)] = 1.0 + (k % 7) as f64;
        }
        w
    }

    /// The lockstep-vs-sequential engine workload: `n` fresh problems at
    /// the session shape (`F = 3`, `M = 8`, `D = 256`) plus a stochastic
    /// engine to solve them with.
    pub fn lockstep_fixture(
        n: usize,
    ) -> (
        Vec<Codebook>,
        Vec<resonator::batch::BatchItem>,
        resonator::StochasticResonator,
    ) {
        let spec = hdc::ProblemSpec::new(3, 8, 256);
        let mut rng = rng_from_seed(3);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = resonator::batch::random_batch(&books, n, 4);
        let engine = resonator::StochasticResonator::paper_default(spec, 500, 9);
        (books, items, engine)
    }
}

pub mod service {
    //! Shared fixtures for the serving benchmarks: the standard service
    //! and the equivalent closed-batch session the `bench_service`
    //! harness bin (which writes `BENCH_service.json`) compares against,
    //! kept here so tests and the harness can never drift apart.

    use std::time::Duration;

    use h3dfact::prelude::*;

    /// The serving benchmark's problem shape.
    pub const SPEC: ProblemSpec = ProblemSpec {
        factors: 3,
        codebook_size: 8,
        dim: 256,
    };

    /// Master seed shared by the service and the baseline session.
    pub const SEED: u64 = 50;

    /// Iteration budget per request.
    pub const MAX_ITERS: usize = 500;

    /// Micro-batch size (also the baseline's closed-batch size).
    pub const BATCH: usize = 8;

    /// The standard two-shard stochastic service at `threads` workers.
    pub fn service(threads: usize) -> FactorizationService {
        FactorizationService::builder()
            .spec(SPEC)
            .backends(&[(BackendKind::Stochastic, 2)])
            .seed(SEED)
            .max_iters(MAX_ITERS)
            .batch_size(BATCH)
            .queue_capacity(4 * BATCH)
            .threads(threads)
            .flush_deadline(Duration::from_millis(2))
            .build()
    }

    /// The equivalent closed-batch baseline: one session, same shape,
    /// seed, and budget, driven through `Session::run_batched`.
    pub fn baseline_session(threads: usize) -> Session {
        Session::builder()
            .spec(SPEC)
            .backend(BackendKind::Stochastic)
            .seed(SEED)
            .max_iters(MAX_ITERS)
            .threads(threads)
            .build()
    }
}

pub mod traffic {
    //! Synthetic traffic generation for the network serving front-end:
    //! a closed-loop prober (one outstanding request — measures the
    //! no-queueing service capacity) and an open-loop generator with
    //! heavy-tailed lognormal interarrivals (offered load is independent
    //! of completions — queueing delay and shedding become visible).
    //! Shared by the `bench_service` harness (latency-vs-offered-load
    //! curves in `BENCH_service.json`) and the `traffic_gen` CI smoke.

    use std::net::SocketAddr;
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    use h3dfact::server::ServeClient;
    use h3dfact::service::RequestStream;
    use h3dfact::wire::Frame;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// What one traffic run observed, all timing client-side (so the
    /// latency includes the wire hop and any server-side queueing).
    #[derive(Debug, Clone)]
    pub struct TrafficReport {
        /// Requests sent.
        pub sent: usize,
        /// `Response` frames received.
        pub completed: usize,
        /// `Shed` frames received (explicit backpressure).
        pub shed: usize,
        /// Protocol faults observed (`Error` frames or codec errors).
        pub protocol_errors: usize,
        /// Wall time from first send to last completion, seconds.
        pub wall_s: f64,
        /// Completions per second over `wall_s`.
        pub achieved_rps: f64,
        /// Client-observed latency percentiles, milliseconds
        /// (send → response; shed requests are excluded).
        pub p50_ms: f64,
        /// 95th percentile, ms.
        pub p95_ms: f64,
        /// 99th percentile, ms.
        pub p99_ms: f64,
        /// 99.9th percentile, ms.
        pub p999_ms: f64,
    }

    impl TrafficReport {
        /// Fraction of sent requests shed.
        pub fn shed_rate(&self) -> f64 {
            if self.sent == 0 {
                0.0
            } else {
                self.shed as f64 / self.sent as f64
            }
        }
    }

    /// Nearest-rank percentiles (ms) over the collected latencies.
    fn percentiles(latencies_ms: &mut [f64]) -> (f64, f64, f64, f64) {
        if latencies_ms.is_empty() {
            return (0.0, 0.0, 0.0, 0.0);
        }
        latencies_ms.sort_by(f64::total_cmp);
        let n = latencies_ms.len();
        // Integer per-mille rank: `99.9/100.0` is not representable in
        // f64 (it rounds up), so the float formula overshoots the
        // nearest rank at n = 1000 — `(permille·n).ceil()` gave 1000
        // where rank 999 is correct.
        let pick = |permille: usize| {
            let rank = ((permille * n).div_ceil(1000)).max(1);
            latencies_ms[rank - 1]
        };
        (pick(500), pick(950), pick(990), pick(999))
    }

    /// Closed loop: one request in flight at a time, next send gated on
    /// the previous completion. The achieved rate is the service's
    /// zero-queueing capacity for this client — the natural unit for
    /// offered-load multiples in [`open_loop`].
    pub fn closed_loop(
        addr: SocketAddr,
        stream: &mut RequestStream,
        requests: usize,
    ) -> TrafficReport {
        let mut client = ServeClient::connect(addr).expect("connect");
        let mut latencies_ms = Vec::with_capacity(requests);
        let (mut completed, mut shed, mut protocol_errors) = (0usize, 0usize, 0usize);
        let t0 = Instant::now();
        for tag in 0..requests as u64 {
            let request = stream.next_request();
            let sent_at = Instant::now();
            client.send_request(tag, &request).expect("send");
            match client.recv() {
                Ok(Some(Frame::Response(r))) => {
                    assert_eq!(r.tag, tag, "closed loop sees its own tag");
                    completed += 1;
                    latencies_ms.push(sent_at.elapsed().as_secs_f64() * 1e3);
                }
                Ok(Some(Frame::Shed { .. })) => shed += 1,
                _ => {
                    protocol_errors += 1;
                    break;
                }
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let (p50_ms, p95_ms, p99_ms, p999_ms) = percentiles(&mut latencies_ms);
        TrafficReport {
            sent: requests,
            completed,
            shed,
            protocol_errors,
            wall_s,
            achieved_rps: completed as f64 / wall_s.max(1e-9),
            p50_ms,
            p95_ms,
            p99_ms,
            p999_ms,
        }
    }

    /// Open loop: sends are paced by a heavy-tailed lognormal
    /// interarrival process with mean `1/offered_rps`, regardless of how
    /// fast completions come back — offered load above capacity shows up
    /// as queueing delay and shed frames instead of silently throttling
    /// the generator. `sigma` is the lognormal shape parameter (≈ 1.0 is
    /// decidedly heavy-tailed; 0 degenerates to a uniform cadence).
    ///
    /// The schedule is absolute (`start + Σ gaps`), so a late send does
    /// not stretch the rest of the run: the generator catches up in a
    /// burst, as real open-loop load does.
    pub fn open_loop(
        addr: SocketAddr,
        stream: &mut RequestStream,
        requests: usize,
        offered_rps: f64,
        sigma: f64,
        seed: u64,
    ) -> TrafficReport {
        assert!(offered_rps > 0.0, "offered load must be positive");
        let sender = ServeClient::connect(addr).expect("connect");
        let mut receiver = sender.try_clone().expect("clone socket");

        // Receiver half: drain completions until every sent request is
        // answered (each gets exactly one response or shed frame).
        let (tx, rx) = mpsc::channel::<(u64, Instant)>();
        let collector = std::thread::spawn(move || {
            let mut send_times: Vec<Option<Instant>> = vec![None; requests];
            let mut latencies_ms = Vec::with_capacity(requests);
            let (mut completed, mut shed, mut protocol_errors) = (0usize, 0usize, 0usize);
            while completed + shed + protocol_errors < requests {
                // Sends happen-before their responses, so the timestamp
                // for any received tag is already in the channel.
                match receiver.recv() {
                    Ok(Some(Frame::Response(r))) => {
                        while send_times[r.tag as usize].is_none() {
                            let (tag, at) = rx.recv().expect("send timestamp");
                            send_times[tag as usize] = Some(at);
                        }
                        let sent_at = send_times[r.tag as usize].expect("recorded");
                        latencies_ms.push(sent_at.elapsed().as_secs_f64() * 1e3);
                        completed += 1;
                    }
                    Ok(Some(Frame::Shed { .. })) => shed += 1,
                    Ok(Some(_)) | Ok(None) | Err(_) => {
                        protocol_errors += 1;
                        break;
                    }
                }
            }
            (latencies_ms, completed, shed, protocol_errors)
        });

        // Sender half: lognormal with mean 1/offered_rps means
        // `mu = ln(1/rps) − sigma²/2` (the mean of a lognormal is
        // `exp(mu + sigma²/2)`). Normal deviates via Box–Muller — the
        // offline rand shim has uniforms only.
        let mu = (1.0 / offered_rps).ln() - sigma * sigma / 2.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sender = sender;
        let start = Instant::now();
        let mut due_s = 0.0f64;
        for tag in 0..requests as u64 {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            due_s += (mu + sigma * z).exp();
            let due = Duration::from_secs_f64(due_s);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
            let request = stream.next_request();
            tx.send((tag, Instant::now())).expect("collector alive");
            sender.send_request(tag, &request).expect("send");
        }
        drop(tx);

        let (mut latencies_ms, completed, shed, protocol_errors) =
            collector.join().expect("collector thread");
        let wall_s = start.elapsed().as_secs_f64();
        let (p50_ms, p95_ms, p99_ms, p999_ms) = percentiles(&mut latencies_ms);
        TrafficReport {
            sent: requests,
            completed,
            shed,
            protocol_errors,
            wall_s,
            achieved_rps: completed as f64 / wall_s.max(1e-9),
            p50_ms,
            p95_ms,
            p99_ms,
            p999_ms,
        }
    }
}

pub mod env {
    //! Environment knobs shared by the bench targets.

    /// True when `H3DFACT_FULL=1`: run the paper-scale grids (hours)
    /// instead of the scaled defaults (minutes).
    pub fn full_scale() -> bool {
        std::env::var("H3DFACT_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
    }

    /// Trial count for accuracy cells, honoring `H3DFACT_TRIALS`.
    pub fn trials(default: usize) -> usize {
        std::env::var("H3DFACT_TRIALS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Worker threads, honoring `H3DFACT_THREADS`.
    pub fn threads() -> usize {
        std::env::var("H3DFACT_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
    }
}

pub mod workloads {
    //! Shared fixtures for the end-to-end `Workload` benchmarks: the
    //! standard session + workload pairs the `bench_workloads` harness
    //! bin (which writes `BENCH_workloads.json`) drives, kept here so
    //! future Criterion groups and the harness can never drift apart.

    use h3dfact::perception::{AttributeSchema, NeuralFrontend};
    use h3dfact::session::{BackendKind, Session};
    use h3dfact::workload::{
        CapacitySweep, IntegerFactorization, Perception, RandomFactorization, RobustnessSweep,
        SeverityPoint,
    };
    use hdc::ProblemSpec;

    /// The standard random-factorization shape (`F = 3`, `M = 8`,
    /// `D = 256`).
    pub const RANDOM_SPEC: ProblemSpec = ProblemSpec {
        factors: 3,
        codebook_size: 8,
        dim: 256,
    };

    /// Perception dimension used by the workload benches.
    pub const PERCEPTION_DIM: usize = 512;

    /// A session provisioned for `spec` on `kind` at `threads` workers.
    pub fn session(spec: ProblemSpec, kind: BackendKind, threads: usize) -> Session {
        Session::builder()
            .spec(spec)
            .backend(kind)
            .seed(40)
            .max_iters(1_500)
            .threads(threads)
            .build()
    }

    /// The benchmark's random-factorization workload.
    pub fn random() -> RandomFactorization {
        RandomFactorization::new(RANDOM_SPEC, 41)
    }

    /// The benchmark's attribute-estimation perception workload.
    pub fn perception_attributes() -> Perception {
        Perception::attributes(
            AttributeSchema::raven(),
            PERCEPTION_DIM,
            NeuralFrontend::paper_quality(5),
            42,
        )
    }

    /// The benchmark's RPM-puzzle perception workload.
    pub fn perception_puzzles() -> Perception {
        Perception::puzzles(
            AttributeSchema::raven(),
            PERCEPTION_DIM,
            NeuralFrontend::paper_quality(5),
            43,
        )
    }

    /// The benchmark's integer-factorization workload (primes below 100,
    /// `D = 1024`).
    pub fn integer() -> IntegerFactorization {
        IntegerFactorization::new(100, 1024, 44)
    }

    /// The benchmark's capacity-sweep workload at the random shape.
    pub fn capacity() -> CapacitySweep {
        CapacitySweep::new(RANDOM_SPEC, 45)
    }

    /// The benchmark's robustness sweep at the random shape (ROADMAP 4c).
    pub fn robustness() -> RobustnessSweep {
        RobustnessSweep::new(RANDOM_SPEC, 46)
    }

    /// The severity grid the robustness frontier measures: stuck-at
    /// rates crossed with PCM drift scales (`1 + ν·ln(1+t)` at ν = 0.05
    /// for t = 0 s, ~1 hour, ~1 month), extended with
    /// conductance-window nonlinearity cells (the nonlinear G–V write
    /// curve alone, and stacked on the worst drift cell).
    pub fn severity_grid(quick: bool) -> Vec<SeverityPoint> {
        let drift: Vec<f64> = [0.0, 3.6e3, 2.6e6]
            .iter()
            .map(|&t| SeverityPoint::pcm_drift_scale(0.05, t))
            .collect();
        let mut points = if quick {
            SeverityPoint::grid(&[0.0, 0.05], &drift[..2])
        } else {
            SeverityPoint::grid(&[0.0, 0.01, 0.05, 0.10], &drift)
        };
        let clean = points[0];
        let worst = *points.last().expect("grid is non-empty");
        points.push(clean.with_write_nonlinearity(0.15));
        if !quick {
            points.push(clean.with_write_nonlinearity(0.30));
            points.push(worst.with_write_nonlinearity(0.15));
        }
        points
    }
}
