//! Shared helpers for the benchmark harness (see `benches/`).
//!
//! Each paper table/figure has a dedicated `harness = false` bench target
//! that prints the regenerated rows; `benches/kernels.rs` holds the
//! Criterion micro-benchmarks.

pub mod kernels {
    //! The packed-kernel microbench workloads, shared by the
    //! `kernels_packed` Criterion group (`benches/kernels.rs`) and the
    //! `bench_kernels` harness bin (which writes `BENCH_kernels.json`) so
    //! the two can never drift apart.

    use hdc::rng::rng_from_seed;
    use hdc::{BipolarVector, Codebook, PackedBatch};

    /// Codebook rows `M` of the microbench shape.
    pub const M: usize = 256;
    /// Hypervector dimension `D` of the microbench shape.
    pub const D: usize = 1024;

    /// One fixture: the codebook, a query, and the mid-weight vector the
    /// projection benches drive (`w_j = j mod 16`, the shape of a coarse
    /// ADC readout).
    pub struct Fixture {
        /// The `M × D` codebook.
        pub book: Codebook,
        /// A random query vector.
        pub query: BipolarVector,
        /// Projection weights.
        pub weights: Vec<f64>,
    }

    /// Builds the standard `M = 256`, `D = 1024` fixture.
    pub fn fixture() -> Fixture {
        let mut rng = rng_from_seed(1);
        let book = Codebook::random(M, D, &mut rng);
        let query = BipolarVector::random(D, &mut rng);
        let weights = (0..M).map(|i| (i % 16) as f64).collect();
        Fixture {
            book,
            query,
            weights,
        }
    }

    /// Per-vector similarity baseline: one `BipolarVector::dot` per
    /// codevector (the pre-packed software path), written into `out`.
    pub fn similarities_pervector(fx: &Fixture, out: &mut [f64]) {
        for (o, v) in out.iter_mut().zip(fx.book.vectors()) {
            *o = v.dot(&fx.query) as f64;
        }
    }

    /// Packed similarity MVM into `out`.
    pub fn similarities_packed(fx: &Fixture, out: &mut [f64]) {
        fx.book.packed().similarities_into(&fx.query, out);
    }

    /// Allocating iteration round-trip (similarity + projection +
    /// re-sign), the seed-era kernel shape: fresh vectors every call.
    pub fn iteration_allocating(fx: &Fixture) -> BipolarVector {
        let sims: Vec<f64> = fx
            .book
            .vectors()
            .iter()
            .map(|v| v.dot(&fx.query) as f64)
            .collect();
        std::hint::black_box(&sims);
        let sums = hdc::ops::weighted_sums(fx.book.vectors(), &fx.weights);
        BipolarVector::from_reals_sign(&sums)
    }

    /// Scratch reused by [`iteration_allocfree`].
    pub struct IterationScratch {
        /// Similarity weights (`M`).
        pub sims: Vec<f64>,
        /// Projection sums (`D`).
        pub sums: Vec<f64>,
        /// The re-signed estimate.
        pub estimate: BipolarVector,
    }

    /// Builds the scratch for the alloc-free round-trip.
    pub fn iteration_scratch() -> IterationScratch {
        IterationScratch {
            sims: vec![0.0f64; M],
            sums: vec![0.0f64; D],
            estimate: BipolarVector::ones(D),
        }
    }

    /// Allocation-free iteration round-trip through the packed kernels
    /// and caller-owned scratch.
    pub fn iteration_allocfree(fx: &Fixture, scratch: &mut IterationScratch) {
        fx.book
            .packed()
            .similarities_into(&fx.query, &mut scratch.sims);
        std::hint::black_box(&scratch.sims);
        fx.book
            .packed()
            .weighted_sums_into(&fx.weights, &mut scratch.sums);
        scratch.estimate.assign_signs_of_reals(&scratch.sums);
    }

    /// The batch-executor session of the microbench: stochastic backend,
    /// `F = 3`, `M = 8`, `D = 256`, at the given worker-thread count.
    pub fn batch_session(threads: usize, max_iters: usize) -> h3dfact::session::Session {
        h3dfact::session::Session::builder()
            .spec(hdc::ProblemSpec::new(3, 8, 256))
            .backend(h3dfact::session::BackendKind::Stochastic)
            .seed(7)
            .max_iters(max_iters)
            .threads(threads)
            .build()
    }

    /// Query-batch sizes of the batched bit-GEMM table (`B = 1` pins the
    /// batching overhead floor; 8 is the service's default micro-batch;
    /// 16 shows the diminishing-returns tail).
    pub const BATCH_SIZES: [usize; 4] = [1, 4, 8, 16];

    /// Shape of the streaming-regime batched fixture: at `M = 1024`,
    /// `D = 8192` the codebook's lane mirror (1 MiB) decisively exceeds
    /// [`hdc::packed::PackedCodebook::batch_streams_codebook`]'s
    /// threshold and the last-level-resident working set of typical
    /// hosts, so the per-query path re-streams it per query while the
    /// bit-GEMM tiles it once per column group — the regime the batched
    /// kernels exist for. (Shapes near the L2 boundary, 64–256 KiB,
    /// time bimodally on shared vCPUs and make the comparison noisy.)
    pub const M_STREAMING: usize = 1024;
    /// See [`M_STREAMING`].
    pub const D_STREAMING: usize = 8192;

    /// A `B`-query batch over one codebook, packed both ways (separate
    /// vectors for the per-query baseline, a [`PackedBatch`] for the
    /// bit-GEMM).
    pub struct BatchFixture {
        /// The `M × D` codebook.
        pub book: Codebook,
        /// The `B` query vectors.
        pub queries: Vec<BipolarVector>,
        /// The same queries packed lane-major.
        pub batch: PackedBatch,
    }

    /// Builds a `B`-query batched fixture at `m × d` (`M × D` for the
    /// cache-resident regime, [`M_STREAMING`] × [`D_STREAMING`] for the
    /// streaming regime).
    pub fn batch_fixture(m: usize, d: usize, b: usize) -> BatchFixture {
        let mut rng = rng_from_seed(2);
        let book = Codebook::random(m, d, &mut rng);
        let queries: Vec<BipolarVector> =
            (0..b).map(|_| BipolarVector::random(d, &mut rng)).collect();
        let batch = PackedBatch::from_queries(&queries);
        BatchFixture {
            book,
            queries,
            batch,
        }
    }

    /// Per-query baseline at batch shape: `B` sequential packed
    /// similarity MVMs, each re-streaming the codebook (`out` is
    /// query-major `B × M`).
    pub fn similarities_perquery_loop(fx: &BatchFixture, out: &mut [f64]) {
        let m = fx.book.len();
        for (b, q) in fx.queries.iter().enumerate() {
            fx.book
                .packed()
                .similarities_into(q, &mut out[b * m..(b + 1) * m]);
        }
    }

    /// The batched bit-GEMM over the same queries (`out` query-major
    /// `B × M`).
    pub fn similarities_batched(fx: &BatchFixture, out: &mut [f64]) {
        fx.book.packed().similarities_batch_into(&fx.batch, out);
    }

    /// Projection weights with exactly `active` non-zero entries (evenly
    /// spread), for sweeping the sparse/dense regime crossover.
    pub fn weights_with_active(active: usize) -> Vec<f64> {
        let mut w = vec![0.0f64; M];
        if active == 0 {
            return w;
        }
        for k in 0..active.min(M) {
            w[k * M / active.min(M)] = 1.0 + (k % 7) as f64;
        }
        w
    }

    /// The lockstep-vs-sequential engine workload: `n` fresh problems at
    /// the session shape (`F = 3`, `M = 8`, `D = 256`) plus a stochastic
    /// engine to solve them with.
    pub fn lockstep_fixture(
        n: usize,
    ) -> (
        Vec<Codebook>,
        Vec<resonator::batch::BatchItem>,
        resonator::StochasticResonator,
    ) {
        let spec = hdc::ProblemSpec::new(3, 8, 256);
        let mut rng = rng_from_seed(3);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = resonator::batch::random_batch(&books, n, 4);
        let engine = resonator::StochasticResonator::paper_default(spec, 500, 9);
        (books, items, engine)
    }
}

pub mod service {
    //! Shared fixtures for the serving benchmarks: the standard service
    //! and the equivalent closed-batch session the `bench_service`
    //! harness bin (which writes `BENCH_service.json`) compares against,
    //! kept here so tests and the harness can never drift apart.

    use std::time::Duration;

    use h3dfact::prelude::*;

    /// The serving benchmark's problem shape.
    pub const SPEC: ProblemSpec = ProblemSpec {
        factors: 3,
        codebook_size: 8,
        dim: 256,
    };

    /// Master seed shared by the service and the baseline session.
    pub const SEED: u64 = 50;

    /// Iteration budget per request.
    pub const MAX_ITERS: usize = 500;

    /// Micro-batch size (also the baseline's closed-batch size).
    pub const BATCH: usize = 8;

    /// The standard two-shard stochastic service at `threads` workers.
    pub fn service(threads: usize) -> FactorizationService {
        FactorizationService::builder()
            .spec(SPEC)
            .backends(&[(BackendKind::Stochastic, 2)])
            .seed(SEED)
            .max_iters(MAX_ITERS)
            .batch_size(BATCH)
            .queue_capacity(4 * BATCH)
            .threads(threads)
            .flush_deadline(Duration::from_millis(2))
            .build()
    }

    /// The equivalent closed-batch baseline: one session, same shape,
    /// seed, and budget, driven through `Session::run_batched`.
    pub fn baseline_session(threads: usize) -> Session {
        Session::builder()
            .spec(SPEC)
            .backend(BackendKind::Stochastic)
            .seed(SEED)
            .max_iters(MAX_ITERS)
            .threads(threads)
            .build()
    }
}

pub mod env {
    //! Environment knobs shared by the bench targets.

    /// True when `H3DFACT_FULL=1`: run the paper-scale grids (hours)
    /// instead of the scaled defaults (minutes).
    pub fn full_scale() -> bool {
        std::env::var("H3DFACT_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
    }

    /// Trial count for accuracy cells, honoring `H3DFACT_TRIALS`.
    pub fn trials(default: usize) -> usize {
        std::env::var("H3DFACT_TRIALS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Worker threads, honoring `H3DFACT_THREADS`.
    pub fn threads() -> usize {
        std::env::var("H3DFACT_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
    }
}

pub mod workloads {
    //! Shared fixtures for the end-to-end `Workload` benchmarks: the
    //! standard session + workload pairs the `bench_workloads` harness
    //! bin (which writes `BENCH_workloads.json`) drives, kept here so
    //! future Criterion groups and the harness can never drift apart.

    use h3dfact::perception::{AttributeSchema, NeuralFrontend};
    use h3dfact::session::{BackendKind, Session};
    use h3dfact::workload::{CapacitySweep, IntegerFactorization, Perception, RandomFactorization};
    use hdc::ProblemSpec;

    /// The standard random-factorization shape (`F = 3`, `M = 8`,
    /// `D = 256`).
    pub const RANDOM_SPEC: ProblemSpec = ProblemSpec {
        factors: 3,
        codebook_size: 8,
        dim: 256,
    };

    /// Perception dimension used by the workload benches.
    pub const PERCEPTION_DIM: usize = 512;

    /// A session provisioned for `spec` on `kind` at `threads` workers.
    pub fn session(spec: ProblemSpec, kind: BackendKind, threads: usize) -> Session {
        Session::builder()
            .spec(spec)
            .backend(kind)
            .seed(40)
            .max_iters(1_500)
            .threads(threads)
            .build()
    }

    /// The benchmark's random-factorization workload.
    pub fn random() -> RandomFactorization {
        RandomFactorization::new(RANDOM_SPEC, 41)
    }

    /// The benchmark's attribute-estimation perception workload.
    pub fn perception_attributes() -> Perception {
        Perception::attributes(
            AttributeSchema::raven(),
            PERCEPTION_DIM,
            NeuralFrontend::paper_quality(5),
            42,
        )
    }

    /// The benchmark's RPM-puzzle perception workload.
    pub fn perception_puzzles() -> Perception {
        Perception::puzzles(
            AttributeSchema::raven(),
            PERCEPTION_DIM,
            NeuralFrontend::paper_quality(5),
            43,
        )
    }

    /// The benchmark's integer-factorization workload (primes below 100,
    /// `D = 1024`).
    pub fn integer() -> IntegerFactorization {
        IntegerFactorization::new(100, 1024, 44)
    }

    /// The benchmark's capacity-sweep workload at the random shape.
    pub fn capacity() -> CapacitySweep {
        CapacitySweep::new(RANDOM_SPEC, 45)
    }
}
