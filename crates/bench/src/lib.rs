//! Shared helpers for the benchmark harness (see `benches/`).
//!
//! Each paper table/figure has a dedicated `harness = false` bench target
//! that prints the regenerated rows; `benches/kernels.rs` holds the
//! Criterion micro-benchmarks.

pub mod env {
    //! Environment knobs shared by the bench targets.

    /// True when `H3DFACT_FULL=1`: run the paper-scale grids (hours)
    /// instead of the scaled defaults (minutes).
    pub fn full_scale() -> bool {
        std::env::var("H3DFACT_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
    }

    /// Trial count for accuracy cells, honoring `H3DFACT_TRIALS`.
    pub fn trials(default: usize) -> usize {
        std::env::var("H3DFACT_TRIALS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Worker threads, honoring `H3DFACT_THREADS`.
    pub fn threads() -> usize {
        std::env::var("H3DFACT_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
    }
}
