//! Cross-target cost harness: runs the same problem set through every
//! execution target — functional (bit-exact engine path), approximate
//! tiled hardware co-simulation (IR drop + per-iteration thermal
//! stepping), and the DMA-queue offload stub — hard-asserts the
//! functional ↔ DMA bit-identity contract, and splices a `"targets"`
//! cost block into `BENCH_kernels.json` so the kernel perf record also
//! carries the cross-target cost picture.
//!
//! ```sh
//! cargo run --release -p h3dfact_bench --bin bench_targets            # full
//! cargo run --release -p h3dfact_bench --bin bench_targets -- --quick # CI smoke
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use h3dfact::prelude::*;

/// One measured (backend, target) pairing.
struct Row {
    backend: &'static str,
    target: &'static str,
    solved: usize,
    iterations: usize,
    energy_j: Option<f64>,
    cycles: Option<u64>,
    wall_s: f64,
    /// Approximate tiled target only.
    peak_temp_c: Option<f64>,
    /// DMA target only: (commands, bytes, max_depth).
    queue: Option<(u64, u64, usize)>,
}

fn run_pair(
    kind: BackendKind,
    target: TargetKind,
    n: usize,
    max_iters: usize,
) -> (Row, SessionReport) {
    let mut session = Session::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backend(kind)
        .seed(70)
        .max_iters(max_iters)
        .target(target)
        .build();
    let t0 = Instant::now();
    let report = session.run(n);
    let wall_s = t0.elapsed().as_secs_f64();
    let cost = session
        .last_cost_report()
        .expect("target-routed sessions report cost");
    (
        Row {
            backend: kind.name(),
            target: target.name(),
            solved: report.solved,
            iterations: report.total_iterations,
            energy_j: report.total_energy_j,
            cycles: cost.cycles,
            wall_s,
            peak_temp_c: cost.peak_temp_c,
            queue: cost.queue.map(|q| (q.commands, q.bytes, q.max_depth)),
        },
        report,
    )
}

/// Splices `block` in as the last top-level key of `BENCH_kernels.json`,
/// replacing any previous `"targets"` block (the file's other keys are
/// owned by `bench_kernels`).
fn splice_into_kernels_json(block: &str) {
    let mut base = std::fs::read_to_string("BENCH_kernels.json")
        .unwrap_or_else(|_| "{\n  \"bench\": \"kernels_packed\"\n}\n".to_string());
    if let Some(i) = base.find(",\n  \"targets\":") {
        base.truncate(i);
        base.push_str("\n}\n");
    }
    let body = base
        .trim_end()
        .strip_suffix('}')
        .expect("BENCH_kernels.json must be a JSON object")
        .trim_end()
        .to_string();
    let mut out = body;
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push('\n');
    out.push_str(block);
    out.push_str("}\n");
    std::fs::write("BENCH_kernels.json", &out).expect("write BENCH_kernels.json");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, max_iters) = if quick { (4, 500) } else { (16, 1_000) };

    // Functional vs DMA on two backend kinds, plus the approximate tiled
    // co-simulation on the analog pair.
    let pairs: Vec<(BackendKind, TargetKind)> = vec![
        (BackendKind::H3dFact, TargetKind::Functional),
        (BackendKind::H3dFact, TargetKind::ApproxTiled),
        (BackendKind::H3dFact, TargetKind::DmaQueue),
        (BackendKind::Hybrid2d, TargetKind::ApproxTiled),
        (BackendKind::Pcm, TargetKind::Functional),
        (BackendKind::Pcm, TargetKind::DmaQueue),
    ];
    let mut rows = Vec::with_capacity(pairs.len());
    let mut reports = Vec::with_capacity(pairs.len());
    for &(kind, target) in &pairs {
        let (row, report) = run_pair(kind, target, n, max_iters);
        rows.push(row);
        reports.push((kind, target, report));
    }

    // The equivalence contract, hard-asserted before anything is written:
    // DMA offload must be bit-identical to the functional path.
    let mut dma_identical = true;
    for kind in [BackendKind::H3dFact, BackendKind::Pcm] {
        let functional = &reports
            .iter()
            .find(|(k, t, _)| *k == kind && *t == TargetKind::Functional)
            .expect("functional row")
            .2;
        let dma = &reports
            .iter()
            .find(|(k, t, _)| *k == kind && *t == TargetKind::DmaQueue)
            .expect("dma row")
            .2;
        dma_identical &= functional.solved == dma.solved
            && functional.total_iterations == dma.total_iterations
            && functional.total_energy_j == dma.total_energy_j
            && functional
                .outcomes
                .iter()
                .zip(&dma.outcomes)
                .all(|(a, b)| a.decoded == b.decoded && a.iterations == b.iterations);
    }

    let fmt_opt_f = |v: Option<f64>| v.map(|x| format!("{x:.6e}")).unwrap_or("null".into());
    let fmt_opt_u = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or("null".into());
    let mut block = String::new();
    let _ = writeln!(block, "  \"targets\": {{");
    let _ = writeln!(block, "    \"quick\": {quick},");
    let _ = writeln!(
        block,
        "    \"spec\": {{\"factors\": 3, \"codebook_size\": 8, \"dim\": 256}},"
    );
    let _ = writeln!(block, "    \"problems\": {n},");
    // `solved`/`iterations`/`energy_j` aggregate the whole session;
    // `cycles`/`peak_temp_c`/`queue_*` are the final run's CostReport.
    let _ = writeln!(
        block,
        "    \"cost_fields_scope\": \"last_run (cycles, peak_temp_c, queue_*)\","
    );
    let _ = writeln!(
        block,
        "    \"functional_dma_bit_identical\": {dma_identical},"
    );
    let _ = writeln!(block, "    \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let extras = match (r.peak_temp_c, r.queue) {
            (Some(t), _) => format!(", \"peak_temp_c\": {t:.3}"),
            (_, Some((commands, bytes, depth))) => format!(
                ", \"queue_commands\": {commands}, \"queue_bytes\": {bytes}, \
                 \"queue_max_depth\": {depth}"
            ),
            _ => String::new(),
        };
        let _ = writeln!(
            block,
            "      {{\"backend\": \"{}\", \"target\": \"{}\", \"solved\": {}, \
             \"iterations\": {}, \"energy_j\": {}, \"cycles\": {}, \
             \"wall_s\": {:.4}{extras}}}{comma}",
            r.backend,
            r.target,
            r.solved,
            r.iterations,
            fmt_opt_f(r.energy_j),
            fmt_opt_u(r.cycles),
            r.wall_s
        );
    }
    let _ = writeln!(block, "    ]");
    let _ = writeln!(block, "  }}");

    splice_into_kernels_json(&block);
    println!("{block}");
    assert!(
        dma_identical,
        "DMA-queue outcomes diverged from the functional target"
    );
}
