//! Standalone synthetic traffic generator for the network serving
//! front-end: spawns the TCP server over the standard benchmark pool,
//! drives it closed-loop (capacity probe) and open-loop (heavy-tailed
//! lognormal interarrivals at an offered-load multiple of that
//! capacity), and prints what happened. Exits non-zero on any protocol
//! error or lost request — the CI smoke runs `--quick` (~100 requests)
//! and expects a clean exit.
//!
//! ```sh
//! cargo run --release -p h3dfact_bench --bin traffic_gen            # full
//! cargo run --release -p h3dfact_bench --bin traffic_gen -- --quick # CI smoke
//! ```

use h3dfact::prelude::*;
use h3dfact::server;
use h3dfact_bench::service as fx;
use h3dfact_bench::traffic;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = h3dfact_bench::env::threads().max(2);
    // ~100 requests in quick mode: 40 closed-loop + 2 × 32 open-loop.
    let (closed_n, open_n) = if quick { (40, 32) } else { (160, 256) };

    let svc = fx::service(threads);
    let mut probe = svc.request_stream("probe", BackendKind::Stochastic, 7);
    let mut load = svc.request_stream("load", BackendKind::Stochastic, 8);
    // Connection hardening on: generator traffic must complete cleanly
    // with read timeouts armed and batches solved off the admission lock.
    let config = ServerConfig::default()
        .read_timeout(std::time::Duration::from_secs(5))
        .solver_threads(1);
    let handle = server::spawn(svc, config).expect("spawn server");
    let addr = handle.local_addr();
    println!("traffic_gen: serving on {addr} ({threads} worker threads, 5 s read timeout)");

    let closed = traffic::closed_loop(addr, &mut probe, closed_n);
    println!(
        "closed loop: {}/{} completed in {:.3} s — capacity ≈ {:.1} rps, \
         p50 {:.2} ms p99 {:.2} ms",
        closed.completed,
        closed.sent,
        closed.wall_s,
        closed.achieved_rps,
        closed.p50_ms,
        closed.p99_ms
    );
    assert_eq!(closed.protocol_errors, 0, "closed loop saw protocol errors");
    assert_eq!(closed.completed, closed_n, "closed loop lost responses");

    let mut total_errors = 0usize;
    for (i, x) in [0.8f64, 1.6].into_iter().enumerate() {
        let offered = x * closed.achieved_rps;
        let report = traffic::open_loop(addr, &mut load, open_n, offered, 1.0, 77 + i as u64);
        println!(
            "open loop {x:.1}×: offered {:.1} rps → achieved {:.1} rps, \
             {} completed + {} shed, p50 {:.2} ms p95 {:.2} ms p99.9 {:.2} ms",
            offered,
            report.achieved_rps,
            report.completed,
            report.shed,
            report.p50_ms,
            report.p95_ms,
            report.p999_ms
        );
        total_errors += report.protocol_errors;
        assert_eq!(
            report.completed + report.shed,
            open_n,
            "every open-loop request must be answered or explicitly shed"
        );
    }

    let stats = handle.stats();
    println!(
        "server: {} accepted, {} completed, {} shed, p99 {:.2} ms over {} samples",
        stats.accepted,
        stats.completed,
        stats.shed_total(),
        stats.p99_ms,
        stats.latency_samples
    );
    assert_eq!(
        stats.reaped_timeout, 0,
        "well-behaved generator traffic must never trip the read timeout"
    );
    handle.shutdown();
    assert_eq!(total_errors, 0, "open loop saw protocol errors");
    println!("traffic_gen: zero protocol errors");
}
