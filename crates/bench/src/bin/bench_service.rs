//! Serving-layer performance harness: streams multi-tenant traffic
//! through the `FactorizationService` (micro-batching, warmed shards),
//! measures sustained throughput and per-request wall-latency
//! percentiles, compares against the equivalent closed-batch
//! `Session::run_batched` loop at the same thread count, verifies the
//! live-vs-replay bit-identity contract, then puts the same pool behind
//! the TCP front-end and sweeps an open-loop lognormal traffic generator
//! across offered-load multiples of the measured closed-loop capacity
//! (latency and shed-rate curves). Writes a `BENCH_service.json`
//! summary.
//!
//! ```sh
//! cargo run --release -p h3dfact_bench --bin bench_service            # full
//! cargo run --release -p h3dfact_bench --bin bench_service -- --quick # CI smoke
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use h3dfact::prelude::*;
use h3dfact::server;
use h3dfact_bench::service as fx;
use h3dfact_bench::traffic;

/// Nearest-rank percentile over a sorted sample, with the rank computed
/// in integer per-mille (e.g. `999` = p99.9) — float percentages like
/// `99.9/100.0` round above the true ratio and overshoot the rank.
fn percentile(sorted: &[f64], permille: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((permille * sorted.len()).div_ceil(1000)).max(1);
    sorted[rank - 1]
}

/// A shape whose codebook rows stream in the bit-GEMM (128 KiB > the
/// 96 KiB threshold), so hot-tier promotion pays real materialization.
const STREAMING_SPEC: ProblemSpec = ProblemSpec {
    factors: 2,
    codebook_size: 512,
    dim: 2048,
};

/// A session pinned to a private registry, at the bench seed discipline.
fn registry_session(registry: &Arc<CodebookRegistry>, spec: ProblemSpec, seed: u64) -> Session {
    Session::builder()
        .spec(spec)
        .backend(BackendKind::Stochastic)
        .seed(seed)
        .max_iters(fx::MAX_ITERS)
        .registry(Arc::clone(registry))
        .build()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = h3dfact_bench::env::threads().max(2);
    let rounds = if quick { 8 } else { 48 };
    let requests_total = rounds * fx::BATCH * 2; // two tenants per round

    // ── Baseline: the closed-batch loop the service must not lose to. ──
    // Same shape, seed, budget, thread count; each round generates and
    // solves one batch of fx::BATCH problems.
    let mut session = fx::baseline_session(threads);
    let t0 = Instant::now();
    let mut baseline_problems = 0usize;
    let mut baseline_solved = 0usize;
    for _ in 0..rounds * 2 {
        let report = session.run_batched(fx::BATCH);
        baseline_problems += report.problems;
        baseline_solved += report.solved;
    }
    let baseline_wall_s = t0.elapsed().as_secs_f64();
    let baseline_rps = baseline_problems as f64 / baseline_wall_s;

    // ── Service: the same volume streamed by two tenants. ──
    // Request generation is inside the timed loop (the baseline's
    // `run_batched` also generates in-loop), so the comparison is
    // end-to-end on both sides.
    let mut svc = fx::service(threads);
    let mut tenant_a = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let mut tenant_b = svc.request_stream("tenant-b", BackendKind::Stochastic, 1);
    let t0 = Instant::now();
    for _ in 0..rounds {
        for _ in 0..fx::BATCH {
            svc.submit(tenant_a.next_request());
            svc.submit(tenant_b.next_request());
        }
        svc.pump();
    }
    let responses = svc.drain();
    let service_wall_s = t0.elapsed().as_secs_f64();
    let service_rps = responses.len() as f64 / service_wall_s;
    assert_eq!(responses.len(), requests_total);
    let service_solved = responses.iter().filter(|r| r.outcome.solved).count();

    // Wall-latency percentiles (submit → micro-batch completion).
    let mut latencies: Vec<f64> = responses
        .iter()
        .filter_map(|r| r.wall_latency_s)
        .map(|l| l * 1e3)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let (p50, p95, p99) = (
        percentile(&latencies, 500),
        percentile(&latencies, 950),
        percentile(&latencies, 990),
    );

    // ── The determinism contract: live micro-batched output must equal
    // the serial trace replay bit for bit. ──
    // Replay returns trace (flush) order while `drain` returns admission
    // id order; the contract is per-request bit-identity, so compare on
    // matching ids.
    let mut replayed = svc.replay(svc.trace());
    replayed.sort_by_key(|r| r.id);
    let identical = responses.len() == replayed.len()
        && responses.iter().zip(&replayed).all(|(l, r)| {
            l.outcome.decoded == r.outcome.decoded
                && l.outcome.solved == r.outcome.solved
                && l.outcome.iterations == r.outcome.iterations
                && l.cursor == r.cursor
                && l.shard == r.shard
        });

    let stats = svc.stats();
    let throughput_ratio = service_rps / baseline_rps;

    // ── The network front-end: latency under offered load. ──
    // Step 1: closed loop (one request in flight) over loopback measures
    // the zero-queueing capacity of this pool for one connection.
    let probe_svc = fx::service(threads);
    let mut probe_stream = probe_svc.request_stream("probe", BackendKind::Stochastic, 7);
    let probe_handle =
        server::spawn(probe_svc, ServerConfig::default()).expect("spawn probe server");
    let closed_n = if quick { 32 } else { 128 };
    let closed = traffic::closed_loop(probe_handle.local_addr(), &mut probe_stream, closed_n);
    probe_handle.shutdown();
    assert_eq!(closed.protocol_errors, 0, "closed loop saw protocol errors");
    assert_eq!(closed.completed, closed_n, "closed loop lost responses");
    let capacity_rps = closed.achieved_rps;

    // Step 2: open-loop lognormal traffic at multiples of that capacity,
    // against a server whose tenant quota admits exactly `capacity_rps`
    // sustained — above 1× the token bucket sheds the overload instead
    // of queueing without bound, so the curve shows both queueing delay
    // (latency percentiles) and explicit backpressure (shed rate).
    let load_svc = fx::service(threads);
    let mut load_stream = load_svc.request_stream("load", BackendKind::Stochastic, 8);
    let load_config = ServerConfig::default().quota(
        "load",
        TenantQuota::rate_limited(capacity_rps, 2.0 * fx::BATCH as f64),
    );
    let load_handle = server::spawn(load_svc, load_config).expect("spawn load server");
    // Registry traffic snapshot: the load service resolves its codebook
    // handle once per solved micro-batch, so the delta across the sweep
    // is the hot-tier hit profile under open-loop traffic.
    let reg_before = CodebookRegistry::global().stats();
    let open_n = if quick { 48 } else { 256 };
    let offered_multiples = [0.5, 1.0, 2.0];
    let sweep: Vec<(f64, traffic::TrafficReport)> = offered_multiples
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let report = traffic::open_loop(
                load_handle.local_addr(),
                &mut load_stream,
                open_n,
                x * capacity_rps,
                1.0, // lognormal sigma: decidedly heavy-tailed
                fx::SEED + i as u64,
            );
            assert_eq!(report.protocol_errors, 0, "open loop saw protocol errors");
            assert_eq!(
                report.completed + report.shed,
                open_n,
                "every request must be answered or explicitly shed"
            );
            (x, report)
        })
        .collect();
    let reg_after = CodebookRegistry::global().stats();
    let sweep_resolves = reg_after.resolves - reg_before.resolves;
    let sweep_hot_hits = reg_after.hot_hits - reg_before.hot_hits;
    let sweep_hit_rate = if sweep_resolves == 0 {
        1.0
    } else {
        sweep_hot_hits as f64 / sweep_resolves as f64
    };

    let load_svc = load_handle.shutdown();
    // The admitted-under-load trace replays deterministically (the
    // bit-identity of live wire responses against replay is asserted
    // request-by-request in tests/server.rs; here we check the trace the
    // open-loop run produced is itself stable).
    let wire_replay_ok = {
        let once = load_svc.replay(load_svc.trace());
        let twice = load_svc.replay(load_svc.trace());
        once.len() == twice.len()
            && once
                .iter()
                .zip(&twice)
                .all(|(a, b)| a.outcome.decoded == b.outcome.decoded && a.cursor == b.cursor)
    };

    // ── Registry: the content-addressed codebook memory hierarchy. ──
    // (a) Warm-up amortization: steady-state hot-tier resolve vs a
    // resolve that must rematerialize demoted lane mirrors, on a shape
    // that actually streams (512×2048 rows = 128 KiB > the 96 KiB
    // threshold).
    let roomy = Arc::new(CodebookRegistry::new());
    let hot_session = registry_session(&roomy, STREAMING_SPEC, fx::SEED);
    let hot_handle = hot_session.codebook_handle().clone();
    let resolve_reps = if quick { 200 } else { 2000 };
    let t = Instant::now();
    for _ in 0..resolve_reps {
        std::hint::black_box(hot_handle.resolve());
    }
    let hot_resolve_ns = t.elapsed().as_secs_f64() * 1e9 / resolve_reps as f64;

    // A zero-byte budget forces the two sets to evict each other on
    // every alternating touch: each resolve pays full rematerialization.
    let pressured = Arc::new(CodebookRegistry::with_hot_budget(0));
    let pa = registry_session(&pressured, STREAMING_SPEC, fx::SEED);
    let pb = registry_session(&pressured, STREAMING_SPEC, fx::SEED + 1);
    let (ha, hb) = (pa.codebook_handle().clone(), pb.codebook_handle().clone());
    let cold_reps = if quick { 20 } else { 100 };
    let t = Instant::now();
    for _ in 0..cold_reps {
        std::hint::black_box(ha.resolve());
        std::hint::black_box(hb.resolve());
    }
    let cold_resolve_us = t.elapsed().as_secs_f64() * 1e6 / (2 * cold_reps) as f64;
    assert!(
        pressured.stats().demotions >= (2 * cold_reps - 2) as u64,
        "zero budget must demote on every alternating resolve"
    );

    // (b) Steady-state resident bytes per tenant: N sessions over one
    // shared codebook set vs N sessions with distinct sets.
    let tenancy: Vec<(usize, u64, u64)> = [1usize, 8, 64]
        .iter()
        .map(|&tenants| {
            let shared = Arc::new(CodebookRegistry::new());
            let _kept: Vec<Session> = (0..tenants)
                .map(|_| registry_session(&shared, fx::SPEC, fx::SEED))
                .collect();
            let distinct = Arc::new(CodebookRegistry::new());
            let _kept: Vec<Session> = (0..tenants)
                .map(|i| registry_session(&distinct, fx::SPEC, fx::SEED + 1 + i as u64))
                .collect();
            (
                tenants,
                shared.stats().resident_bytes(),
                distinct.stats().resident_bytes(),
            )
        })
        .collect();
    let single_tenant_bytes = tenancy[0].1;
    let shared_64_total = tenancy[2].1;
    let shared_64_per_tenant = shared_64_total as f64 / 64.0;
    let distinct_8_per_tenant = tenancy[1].2 as f64 / 8.0;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"service\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"host_available_parallelism\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"max_iters\": {},", fx::MAX_ITERS);
    let _ = writeln!(json, "  \"batch_size\": {},", fx::BATCH);
    let _ = writeln!(json, "  \"baseline_run_batched\": {{");
    let _ = writeln!(json, "    \"problems\": {baseline_problems},");
    let _ = writeln!(json, "    \"solved\": {baseline_solved},");
    let _ = writeln!(json, "    \"wall_s\": {baseline_wall_s:.4},");
    let _ = writeln!(json, "    \"throughput_rps\": {baseline_rps:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"service\": {{");
    let _ = writeln!(json, "    \"requests\": {},", responses.len());
    let _ = writeln!(json, "    \"solved\": {service_solved},");
    let _ = writeln!(json, "    \"wall_s\": {service_wall_s:.4},");
    let _ = writeln!(json, "    \"throughput_rps\": {service_rps:.1},");
    let _ = writeln!(json, "    \"latency_p50_ms\": {p50:.3},");
    let _ = writeln!(json, "    \"latency_p95_ms\": {p95:.3},");
    let _ = writeln!(json, "    \"latency_p99_ms\": {p99:.3},");
    let _ = writeln!(json, "    \"flushes\": {},", stats.flushes);
    let _ = writeln!(json, "    \"flushed_by_size\": {},", stats.flushed_by_size);
    let _ = writeln!(
        json,
        "    \"flushed_by_deadline\": {},",
        stats.flushed_by_deadline
    );
    let _ = writeln!(json, "    \"largest_batch\": {}", stats.largest_batch);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"serving\": {{");
    let _ = writeln!(json, "    \"closed_loop\": {{");
    let _ = writeln!(json, "      \"requests\": {},", closed.sent);
    let _ = writeln!(json, "      \"wall_s\": {:.4},", closed.wall_s);
    let _ = writeln!(json, "      \"capacity_rps\": {capacity_rps:.1},");
    let _ = writeln!(json, "      \"latency_p50_ms\": {:.3},", closed.p50_ms);
    let _ = writeln!(json, "      \"latency_p95_ms\": {:.3},", closed.p95_ms);
    let _ = writeln!(json, "      \"latency_p99_ms\": {:.3},", closed.p99_ms);
    let _ = writeln!(json, "      \"latency_p999_ms\": {:.3}", closed.p999_ms);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"open_loop_sigma\": 1.0,");
    let _ = writeln!(json, "    \"offered_load_curve\": [");
    for (i, (x, r)) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"offered_x_capacity\": {x:.2},");
        let _ = writeln!(json, "        \"offered_rps\": {:.1},", x * capacity_rps);
        let _ = writeln!(json, "        \"sent\": {},", r.sent);
        let _ = writeln!(json, "        \"completed\": {},", r.completed);
        let _ = writeln!(json, "        \"shed\": {},", r.shed);
        let _ = writeln!(json, "        \"shed_rate\": {:.4},", r.shed_rate());
        let _ = writeln!(json, "        \"achieved_rps\": {:.1},", r.achieved_rps);
        let _ = writeln!(json, "        \"latency_p50_ms\": {:.3},", r.p50_ms);
        let _ = writeln!(json, "        \"latency_p95_ms\": {:.3},", r.p95_ms);
        let _ = writeln!(json, "        \"latency_p99_ms\": {:.3},", r.p99_ms);
        let _ = writeln!(json, "        \"latency_p999_ms\": {:.3}", r.p999_ms);
        let _ = writeln!(json, "      }}{comma}");
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"replay_stable_under_load\": {wire_replay_ok}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"registry\": {{");
    let _ = writeln!(json, "    \"hot_resolve_ns\": {hot_resolve_ns:.0},");
    let _ = writeln!(json, "    \"cold_resolve_us\": {cold_resolve_us:.2},");
    let _ = writeln!(
        json,
        "    \"warmup_amortization_x\": {:.1},",
        cold_resolve_us * 1e3 / hot_resolve_ns.max(1.0)
    );
    let _ = writeln!(json, "    \"tenancy\": [");
    for (i, (tenants, shared_total, distinct_total)) in tenancy.iter().enumerate() {
        let comma = if i + 1 < tenancy.len() { "," } else { "" };
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"tenants\": {tenants},");
        let _ = writeln!(json, "        \"shared_total_bytes\": {shared_total},");
        let _ = writeln!(
            json,
            "        \"shared_bytes_per_tenant\": {:.1},",
            *shared_total as f64 / *tenants as f64
        );
        let _ = writeln!(json, "        \"distinct_total_bytes\": {distinct_total},");
        let _ = writeln!(
            json,
            "        \"distinct_bytes_per_tenant\": {:.1}",
            *distinct_total as f64 / *tenants as f64
        );
        let _ = writeln!(json, "      }}{comma}");
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"open_loop_resolves\": {sweep_resolves},");
    let _ = writeln!(json, "    \"open_loop_hot_hits\": {sweep_hot_hits},");
    let _ = writeln!(json, "    \"open_loop_hot_hit_rate\": {sweep_hit_rate:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"throughput_vs_run_batched\": {throughput_ratio:.3},"
    );
    let _ = writeln!(json, "  \"live_equals_replay\": {identical}");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    print!("{json}");

    assert!(identical, "live service output diverged from trace replay");
    assert!(wire_replay_ok, "serving trace replay is unstable");
    // Registry memory-hierarchy gates (run in --quick too: byte
    // accounting is deterministic, unlike wall-clock throughput).
    assert!(
        shared_64_per_tenant < distinct_8_per_tenant,
        "64 shared-codebook tenants must undercut the 8-tenant distinct \
         baseline per tenant ({shared_64_per_tenant:.1} vs {distinct_8_per_tenant:.1} bytes)"
    );
    assert!(
        shared_64_total as f64 <= 1.1 * single_tenant_bytes as f64,
        "64 tenants sharing one codebook set must stay within 1.1x the \
         single-tenant footprint ({shared_64_total} vs {single_tenant_bytes} bytes)"
    );
    // The throughput floor is a full-run assertion only: the --quick CI
    // smoke gates correctness (bit-identity above), not wall-clock — an
    // 8-round sample on a loaded shared runner is too noisy to fail on.
    assert!(
        quick || throughput_ratio >= 0.9,
        "service throughput fell more than 10% below the closed-batch loop \
         ({service_rps:.1} vs {baseline_rps:.1} rps)"
    );
}
