//! Serving-layer performance harness: streams multi-tenant traffic
//! through the `FactorizationService` (micro-batching, warmed shards),
//! measures sustained throughput and per-request wall-latency
//! percentiles, compares against the equivalent closed-batch
//! `Session::run_batched` loop at the same thread count, verifies the
//! live-vs-replay bit-identity contract, and writes a
//! `BENCH_service.json` summary.
//!
//! ```sh
//! cargo run --release -p h3dfact_bench --bin bench_service            # full
//! cargo run --release -p h3dfact_bench --bin bench_service -- --quick # CI smoke
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use h3dfact::prelude::*;
use h3dfact_bench::service as fx;

/// Percentile over an unsorted sample (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = h3dfact_bench::env::threads().max(2);
    let rounds = if quick { 8 } else { 48 };
    let requests_total = rounds * fx::BATCH * 2; // two tenants per round

    // ── Baseline: the closed-batch loop the service must not lose to. ──
    // Same shape, seed, budget, thread count; each round generates and
    // solves one batch of fx::BATCH problems.
    let mut session = fx::baseline_session(threads);
    let t0 = Instant::now();
    let mut baseline_problems = 0usize;
    let mut baseline_solved = 0usize;
    for _ in 0..rounds * 2 {
        let report = session.run_batched(fx::BATCH);
        baseline_problems += report.problems;
        baseline_solved += report.solved;
    }
    let baseline_wall_s = t0.elapsed().as_secs_f64();
    let baseline_rps = baseline_problems as f64 / baseline_wall_s;

    // ── Service: the same volume streamed by two tenants. ──
    // Request generation is inside the timed loop (the baseline's
    // `run_batched` also generates in-loop), so the comparison is
    // end-to-end on both sides.
    let mut svc = fx::service(threads);
    let mut tenant_a = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let mut tenant_b = svc.request_stream("tenant-b", BackendKind::Stochastic, 1);
    let t0 = Instant::now();
    for _ in 0..rounds {
        for _ in 0..fx::BATCH {
            svc.submit(tenant_a.next_request());
            svc.submit(tenant_b.next_request());
        }
        svc.pump();
    }
    let responses = svc.drain();
    let service_wall_s = t0.elapsed().as_secs_f64();
    let service_rps = responses.len() as f64 / service_wall_s;
    assert_eq!(responses.len(), requests_total);
    let service_solved = responses.iter().filter(|r| r.outcome.solved).count();

    // Wall-latency percentiles (submit → micro-batch completion).
    let mut latencies: Vec<f64> = responses
        .iter()
        .filter_map(|r| r.wall_latency_s)
        .map(|l| l * 1e3)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );

    // ── The determinism contract: live micro-batched output must equal
    // the serial trace replay bit for bit. ──
    let replayed = svc.replay(svc.trace());
    let identical = responses.len() == replayed.len()
        && responses.iter().zip(&replayed).all(|(l, r)| {
            l.outcome.decoded == r.outcome.decoded
                && l.outcome.solved == r.outcome.solved
                && l.outcome.iterations == r.outcome.iterations
                && l.cursor == r.cursor
                && l.shard == r.shard
        });

    let stats = svc.stats();
    let throughput_ratio = service_rps / baseline_rps;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"service\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"host_available_parallelism\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"max_iters\": {},", fx::MAX_ITERS);
    let _ = writeln!(json, "  \"batch_size\": {},", fx::BATCH);
    let _ = writeln!(json, "  \"baseline_run_batched\": {{");
    let _ = writeln!(json, "    \"problems\": {baseline_problems},");
    let _ = writeln!(json, "    \"solved\": {baseline_solved},");
    let _ = writeln!(json, "    \"wall_s\": {baseline_wall_s:.4},");
    let _ = writeln!(json, "    \"throughput_rps\": {baseline_rps:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"service\": {{");
    let _ = writeln!(json, "    \"requests\": {},", responses.len());
    let _ = writeln!(json, "    \"solved\": {service_solved},");
    let _ = writeln!(json, "    \"wall_s\": {service_wall_s:.4},");
    let _ = writeln!(json, "    \"throughput_rps\": {service_rps:.1},");
    let _ = writeln!(json, "    \"latency_p50_ms\": {p50:.3},");
    let _ = writeln!(json, "    \"latency_p95_ms\": {p95:.3},");
    let _ = writeln!(json, "    \"latency_p99_ms\": {p99:.3},");
    let _ = writeln!(json, "    \"flushes\": {},", stats.flushes);
    let _ = writeln!(json, "    \"flushed_by_size\": {},", stats.flushed_by_size);
    let _ = writeln!(
        json,
        "    \"flushed_by_deadline\": {},",
        stats.flushed_by_deadline
    );
    let _ = writeln!(json, "    \"largest_batch\": {}", stats.largest_batch);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"throughput_vs_run_batched\": {throughput_ratio:.3},"
    );
    let _ = writeln!(json, "  \"live_equals_replay\": {identical}");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    print!("{json}");

    assert!(identical, "live service output diverged from trace replay");
    // The throughput floor is a full-run assertion only: the --quick CI
    // smoke gates correctness (bit-identity above), not wall-clock — an
    // 8-round sample on a loaded shared runner is too noisy to fail on.
    assert!(
        quick || throughput_ratio >= 0.9,
        "service throughput fell more than 10% below the closed-batch loop \
         ({service_rps:.1} vs {baseline_rps:.1} rps)"
    );
}
