//! Kernel performance harness: measures the packed-codebook MVM, the
//! allocation-free iteration round-trip, and the parallel batch executor
//! against their pre-optimization baselines, then writes a
//! `BENCH_kernels.json` summary so the perf trajectory is tracked from
//! PR 2 onward.
//!
//! ```sh
//! cargo run --release -p h3dfact_bench --bin bench_kernels            # full
//! cargo run --release -p h3dfact_bench --bin bench_kernels -- --quick # CI smoke
//! ```
//!
//! The JSON records nanoseconds per operation for each variant, the
//! speedup ratios, the batch wall times at 1 and 4 threads, whether the
//! parallel report was bit-identical to the sequential one, and the host's
//! available parallelism (thread speedups are only expected to materialize
//! on multi-core hosts).

use std::hint::black_box;
use std::time::Instant;

use h3dfact_bench::kernels;

/// Median-of-runs wall time for one repetition of `f`, in nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One warm-up repetition, then three timed passes; report the median.
    f();
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[1]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mvm_reps = if quick { 200 } else { 3_000 };
    let iter_reps = if quick { 50 } else { 1_000 };
    let batch_problems = if quick { 8 } else { 32 };

    let fx = kernels::fixture();

    // --- Similarity MVM: per-vector baseline vs packed kernel. ---
    let mut out = vec![0.0f64; kernels::M];
    let pervector_ns = time_ns(mvm_reps, || {
        kernels::similarities_pervector(black_box(&fx), &mut out);
        black_box(out[kernels::M - 1]);
    });
    let packed_ns = time_ns(mvm_reps, || {
        kernels::similarities_packed(black_box(&fx), &mut out);
        black_box(out[kernels::M - 1]);
    });
    let mvm_speedup = pervector_ns / packed_ns;

    // --- Iteration round-trip (similarity + projection + re-sign):
    //     allocating reference vs scratch-buffer path. ---
    let alloc_ns = time_ns(iter_reps, || {
        black_box(kernels::iteration_allocating(black_box(&fx)));
    });
    let mut scratch = kernels::iteration_scratch();
    let allocfree_ns = time_ns(iter_reps, || {
        kernels::iteration_allocfree(black_box(&fx), &mut scratch);
        black_box(scratch.estimate.words()[0]);
    });
    let iter_speedup = alloc_ns / allocfree_ns;

    // --- Parallel batch executor: sequential vs 4 worker threads. ---
    let mut seq = kernels::batch_session(1, 1_000);
    let t0 = Instant::now();
    let seq_report = seq.run(batch_problems);
    let seq_s = t0.elapsed().as_secs_f64();
    let mut par = kernels::batch_session(4, 1_000);
    let t1 = Instant::now();
    let par_report = par.run(batch_problems);
    let par_s = t1.elapsed().as_secs_f64();
    let batch_speedup = seq_s / par_s;

    let identical = seq_report.problems == par_report.problems
        && seq_report.solved == par_report.solved
        && seq_report.total_iterations == par_report.total_iterations
        && seq_report.total_energy_j == par_report.total_energy_j
        && seq_report
            .outcomes
            .iter()
            .zip(&par_report.outcomes)
            .all(|(a, b)| a.decoded == b.decoded && a.iterations == b.iterations);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let json = format!(
        "{{\n  \"bench\": \"kernels_packed\",\n  \"quick\": {quick},\n  \
         \"host_available_parallelism\": {cores},\n  \
         \"similarity_mvm_m256_d1024\": {{\n    \
         \"pervector_ns\": {pervector_ns:.1},\n    \
         \"packed_ns\": {packed_ns:.1},\n    \
         \"speedup\": {mvm_speedup:.2}\n  }},\n  \
         \"iteration_roundtrip_m256_d1024\": {{\n    \
         \"allocating_ns\": {alloc_ns:.1},\n    \
         \"allocfree_ns\": {allocfree_ns:.1},\n    \
         \"speedup\": {iter_speedup:.2}\n  }},\n  \
         \"batch_executor_f3_m8_d256\": {{\n    \
         \"problems\": {batch_problems},\n    \
         \"sequential_s\": {seq_s:.4},\n    \
         \"threads4_s\": {par_s:.4},\n    \
         \"speedup\": {batch_speedup:.2},\n    \
         \"reports_bit_identical\": {identical},\n    \
         \"accuracy\": {:.4}\n  }}\n}}\n",
        seq_report.accuracy(),
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    print!("{json}");
    assert!(identical, "parallel batch report diverged from sequential");
}
