//! Kernel performance harness: measures the packed-codebook MVM, the
//! batched bit-GEMM (per-B speedup table), the projection-regime
//! crossover, the lockstep resonator, the allocation-free iteration
//! round-trip, and the parallel batch executor against their
//! pre-optimization baselines, then writes a `BENCH_kernels.json`
//! summary so the perf trajectory is tracked from PR 2 onward.
//!
//! ```sh
//! cargo run --release -p h3dfact_bench --bin bench_kernels            # full
//! cargo run --release -p h3dfact_bench --bin bench_kernels -- --quick # CI smoke
//! ```
//!
//! The JSON records nanoseconds per operation for each variant, the
//! speedup ratios, and a provenance block (`target-cpu`, architecture,
//! word width, whether the Harley–Seal CSA path was taken) without which
//! cross-host numbers are not comparable. The harness **asserts** — in
//! `--quick` CI smoke runs too — that the batched bit-GEMM is
//! value-identical to the per-query kernels, that the lockstep resonator
//! reproduces the sequential engine bit for bit, and that the parallel
//! batch report matches the sequential one.

use std::hint::black_box;
use std::time::Instant;

use h3dfact_bench::kernels;
use hdc::PackedCodebook;
use resonator::engine::Factorizer;

/// Median-of-runs wall time for one repetition of `f`, in nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One warm-up repetition, then three timed passes; report the median.
    f();
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[1]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mvm_reps = if quick { 200 } else { 3_000 };
    let iter_reps = if quick { 50 } else { 1_000 };
    let lockstep_reps = if quick { 2 } else { 10 };
    let batch_problems = if quick { 8 } else { 32 };

    let fx = kernels::fixture();

    // --- Provenance: without these, cross-host numbers are noise. ---
    let harley_seal = fx.book.packed().batch_uses_csa();
    let det = hdc::dispatch::detection();
    let forced = det
        .forced
        .map(|a| format!("\"{a}\""))
        .unwrap_or_else(|| "null".into());
    let provenance = format!(
        "  \"provenance\": {{\n    \"target_cpu\": \"{}\",\n    \"arch\": \"{}\",\n    \
         \"word_bits\": 64,\n    \"csa_block_words\": {},\n    \
         \"harley_seal_taken\": {harley_seal},\n    \
         \"simd_dispatch\": {{\n      \
         \"arm\": \"{}\",\n      \
         \"forced\": {forced},\n      \
         \"forced_unsupported\": {},\n      \
         \"detected\": {{ \"popcnt\": {}, \"avx2\": {}, \"avx512f\": {}, \
         \"avx512vpopcntdq\": {} }}\n    }}\n  }},\n",
        env!("H3DFACT_TARGET_CPU"),
        std::env::consts::ARCH,
        hdc::CSA_BLOCK_WORDS,
        det.arm,
        det.forced_unsupported,
        det.popcnt,
        det.avx2,
        det.avx512f,
        det.avx512vpopcntdq,
    );

    // --- Similarity MVM: per-vector baseline vs packed kernel. ---
    let mut out = vec![0.0f64; kernels::M];
    let pervector_ns = time_ns(mvm_reps, || {
        kernels::similarities_pervector(black_box(&fx), &mut out);
        black_box(out[kernels::M - 1]);
    });
    let packed_ns = time_ns(mvm_reps, || {
        kernels::similarities_packed(black_box(&fx), &mut out);
        black_box(out[kernels::M - 1]);
    });
    let mvm_speedup = pervector_ns / packed_ns;

    // --- Batched bit-GEMM: per-query packed loop vs the matrix–matrix
    //     kernel, per batch size and per dispatch regime (cache-resident
    //     M = 256 / D = 1024 and streaming M = 1024 / D = 8192), with a
    //     hard identity assert
    //     (the per-query path is the ground truth). ---
    let mut batched_identical = true;
    let mut speedup_b8 = 0.0f64;
    let mut regime_tables = String::new();
    for (m, d, label) in [
        (kernels::M, kernels::D, "resident"),
        (kernels::M_STREAMING, kernels::D_STREAMING, "streaming"),
    ] {
        let mut per_b_rows = String::new();
        for b in kernels::BATCH_SIZES {
            let bfx = kernels::batch_fixture(m, d, b);
            let mut per_query = vec![0.0f64; b * m];
            let mut batched = vec![0.0f64; b * m];
            kernels::similarities_perquery_loop(&bfx, &mut per_query);
            kernels::similarities_batched(&bfx, &mut batched);
            batched_identical &= per_query
                .iter()
                .zip(&batched)
                .all(|(p, q)| p.to_bits() == q.to_bits());
            let reps = (mvm_reps * kernels::M * kernels::D / (b * m * d)).max(8);
            let perquery_ns = time_ns(reps, || {
                kernels::similarities_perquery_loop(black_box(&bfx), &mut per_query);
                black_box(per_query[b * m - 1]);
            }) / b as f64;
            let batched_ns = time_ns(reps, || {
                kernels::similarities_batched(black_box(&bfx), &mut batched);
                black_box(batched[b * m - 1]);
            }) / b as f64;
            let speedup = perquery_ns / batched_ns;
            if b == 8 && d == kernels::D_STREAMING {
                speedup_b8 = speedup;
            }
            per_b_rows.push_str(&format!(
                "        {{ \"b\": {b}, \"perquery_ns_per_query\": {perquery_ns:.1}, \
                 \"batched_ns_per_query\": {batched_ns:.1}, \"speedup\": {speedup:.2} }},\n"
            ));
        }
        per_b_rows.pop();
        per_b_rows.pop();
        per_b_rows.push('\n');
        regime_tables.push_str(&format!(
            "    \"{label}_m{m}_d{d}\": {{\n      \"per_b\": [\n{per_b_rows}      ]\n    }},\n"
        ));
    }
    assert!(
        batched_identical,
        "batched similarity bit-GEMM diverged from the per-query kernel"
    );

    // --- Runtime dispatch arms: similarity + projection per supported
    //     arm, each hard-asserted bit-identical to the scalar arm (the
    //     portable ground truth) before it is timed. ---
    let arm_b = 8usize;
    let afx = kernels::batch_fixture(kernels::M, kernels::D, arm_b);
    let packed = afx.book.packed();
    // 15/16 of these weights are non-zero, pinning the dense projection
    // regime the dispatched accumulate exists for.
    let proj_weights: Vec<f64> = (0..arm_b * kernels::M)
        .map(|i| ((i % 16) as f64) - 7.0)
        .collect();
    let mut sims_ref = vec![0.0f64; arm_b * kernels::M];
    let mut proj_ref = vec![0.0f64; arm_b * kernels::D];
    packed.similarities_batch_into_forced(&afx.batch, &mut sims_ref, hdc::SimdArm::Scalar);
    packed.weighted_sums_batch_into_forced(&proj_weights, &mut proj_ref, hdc::SimdArm::Scalar);
    let arm_reps = (mvm_reps / arm_b).max(8);
    let mut arm_rows = String::new();
    let supported: Vec<hdc::SimdArm> = hdc::SimdArm::ALL
        .into_iter()
        .filter(|a| a.supported())
        .collect();
    for (k, &arm) in supported.iter().enumerate() {
        let mut sims = vec![0.0f64; arm_b * kernels::M];
        let mut proj = vec![0.0f64; arm_b * kernels::D];
        packed.similarities_batch_into_forced(&afx.batch, &mut sims, arm);
        packed.weighted_sums_batch_into_forced(&proj_weights, &mut proj, arm);
        let identical = sims
            .iter()
            .zip(&sims_ref)
            .chain(proj.iter().zip(&proj_ref))
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(identical, "dispatch arm `{arm}` diverged from scalar");
        let sim_ns = time_ns(arm_reps, || {
            packed.similarities_batch_into_forced(black_box(&afx.batch), &mut sims, arm);
            black_box(sims[arm_b * kernels::M - 1]);
        }) / arm_b as f64;
        let proj_ns = time_ns(arm_reps, || {
            packed.weighted_sums_batch_into_forced(black_box(&proj_weights), &mut proj, arm);
            black_box(proj[arm_b * kernels::D - 1]);
        }) / arm_b as f64;
        arm_rows.push_str(&format!(
            "      {{ \"arm\": \"{arm}\", \"active\": {}, \
             \"sim_ns_per_query\": {sim_ns:.1}, \"proj_ns_per_query\": {proj_ns:.1}, \
             \"bit_identical_to_scalar\": {identical} }}{}\n",
            arm == det.arm,
            if k + 1 < supported.len() { "," } else { "" }
        ));
    }

    // --- Projection regime sweep: density vs wall time around the
    //     measured sparse/dense crossover constant. ---
    let mut sweep_rows = String::new();
    let mut sums = vec![0.0f64; kernels::D];
    let sweep_actives = [2usize, 8, 16, 32, 64, 128, 256];
    for (k, &active) in sweep_actives.iter().enumerate() {
        let weights = kernels::weights_with_active(active);
        let ns = time_ns(mvm_reps / 2, || {
            fx.book
                .packed()
                .weighted_sums_into(black_box(&weights), &mut sums);
            black_box(sums[kernels::D - 1]);
        });
        let sparse = PackedCodebook::sparse_projection_regime(active, kernels::M);
        sweep_rows.push_str(&format!(
            "      {{ \"active\": {active}, \"sparse_regime\": {sparse}, \"ns\": {ns:.1} }}{}\n",
            if k + 1 < sweep_actives.len() { "," } else { "" }
        ));
    }

    // --- Lockstep resonator: B sequential engine solves vs one lockstep
    //     batch at the same seeds, with a bit-identity assert. ---
    let (books, items, engine) = kernels::lockstep_fixture(8);
    let queries: Vec<(&hdc::BipolarVector, Option<&[usize]>)> = items
        .iter()
        .map(|i| (&i.query, i.truth.as_deref()))
        .collect();
    let mut seq_engine = engine;
    let mut lock_engine = seq_engine;
    seq_engine.set_run_cursor(0);
    let seq_outcomes: Vec<_> = items
        .iter()
        .map(|i| seq_engine.factorize_query(&books, &i.query, i.truth.as_deref()))
        .collect();
    lock_engine.set_run_cursor(0);
    let lock_outcomes = lock_engine.factorize_lockstep(&books, &queries);
    let lockstep_identical = seq_outcomes.iter().zip(&lock_outcomes).all(|(s, l)| {
        let (mut s, mut l) = (s.clone(), l.clone());
        s.times = Default::default();
        l.times = Default::default();
        s == l
    });
    assert!(
        lockstep_identical,
        "lockstep resonator diverged from the sequential engine"
    );
    let seq_lockstep_s = time_ns(lockstep_reps, || {
        seq_engine.set_run_cursor(0);
        for i in &items {
            black_box(seq_engine.factorize_query(&books, &i.query, i.truth.as_deref()));
        }
    }) / 1e9;
    let lock_lockstep_s = time_ns(lockstep_reps, || {
        lock_engine.set_run_cursor(0);
        black_box(lock_engine.factorize_lockstep(&books, &queries));
    }) / 1e9;
    let lockstep_speedup = seq_lockstep_s / lock_lockstep_s;

    // --- Iteration round-trip (similarity + projection + re-sign):
    //     allocating reference vs scratch-buffer path. ---
    let alloc_ns = time_ns(iter_reps, || {
        black_box(kernels::iteration_allocating(black_box(&fx)));
    });
    let mut scratch = kernels::iteration_scratch();
    let allocfree_ns = time_ns(iter_reps, || {
        kernels::iteration_allocfree(black_box(&fx), &mut scratch);
        black_box(scratch.estimate.words()[0]);
    });
    let iter_speedup = alloc_ns / allocfree_ns;

    // --- Work-stealing batch executor: thread-scaling curve, every
    //     thread count asserted bit-identical to sequential. Wall-clock
    //     speedup is only meaningful on multi-core hosts; the identity
    //     contract holds everywhere. ---
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let steals_before = h3dfact::session::executor_steal_events();
    let mut seq = kernels::batch_session(1, 1_000);
    let t0 = Instant::now();
    let seq_report = seq.run(batch_problems);
    let seq_s = t0.elapsed().as_secs_f64();
    let mut identical = true;
    let mut par_s = seq_s;
    let thread_counts = [2usize, 4, 8];
    let mut scaling_rows = format!(
        "      {{ \"threads\": 1, \"wall_s\": {seq_s:.4}, \"speedup\": 1.00, \
         \"bit_identical_to_sequential\": true }},\n"
    );
    for (k, &threads) in thread_counts.iter().enumerate() {
        let mut par = kernels::batch_session(threads, 1_000);
        let t1 = Instant::now();
        let par_report = par.run(batch_problems);
        let wall_s = t1.elapsed().as_secs_f64();
        if threads == 4 {
            par_s = wall_s;
        }
        let same = seq_report.problems == par_report.problems
            && seq_report.solved == par_report.solved
            && seq_report.total_iterations == par_report.total_iterations
            && seq_report.total_energy_j == par_report.total_energy_j
            && seq_report
                .outcomes
                .iter()
                .zip(&par_report.outcomes)
                .all(|(a, b)| a.decoded == b.decoded && a.iterations == b.iterations);
        identical &= same;
        scaling_rows.push_str(&format!(
            "      {{ \"threads\": {threads}, \"wall_s\": {wall_s:.4}, \
             \"speedup\": {:.2}, \"bit_identical_to_sequential\": {same} }}{}\n",
            seq_s / wall_s,
            if k + 1 < thread_counts.len() { "," } else { "" }
        ));
    }
    let steal_events = h3dfact::session::executor_steal_events() - steals_before;
    let batch_speedup = seq_s / par_s;

    let json = format!(
        "{{\n  \"bench\": \"kernels_packed\",\n  \"quick\": {quick},\n  \
         \"host_available_parallelism\": {cores},\n\
         {provenance}  \
         \"similarity_mvm_m256_d1024\": {{\n    \
         \"pervector_ns\": {pervector_ns:.1},\n    \
         \"packed_ns\": {packed_ns:.1},\n    \
         \"speedup\": {mvm_speedup:.2}\n  }},\n  \
         \"batched_similarity_mvm\": {{\n    \
         \"batched_bit_identical\": {batched_identical},\n    \
         \"speedup_b8_streaming\": {speedup_b8:.2},\n\
         {regime_tables}    \
         \"note\": \"streaming = codebook past the cache-residency threshold, the regime the bit-GEMM exists for\"\n  }},\n  \
         \"dispatch_arms_m256_d1024_b8\": {{\n    \
         \"arms\": [\n{arm_rows}    ],\n    \
         \"note\": \"per runtime-dispatch arm; identity vs the scalar arm is hard-asserted before timing\"\n  }},\n  \
         \"projection_regime_sweep_m256_d1024\": {{\n    \
         \"sparse_dense_crossover\": {crossover},\n    \
         \"points\": [\n{sweep_rows}    ]\n  }},\n  \
         \"lockstep_resonator_f3_m8_d256\": {{\n    \
         \"problems\": 8,\n    \
         \"sequential_s\": {seq_lockstep_s:.5},\n    \
         \"lockstep_s\": {lock_lockstep_s:.5},\n    \
         \"speedup\": {lockstep_speedup:.2},\n    \
         \"outcomes_bit_identical\": {lockstep_identical}\n  }},\n  \
         \"iteration_roundtrip_m256_d1024\": {{\n    \
         \"allocating_ns\": {alloc_ns:.1},\n    \
         \"allocfree_ns\": {allocfree_ns:.1},\n    \
         \"speedup\": {iter_speedup:.2}\n  }},\n  \
         \"batch_executor_f3_m8_d256\": {{\n    \
         \"problems\": {batch_problems},\n    \
         \"sequential_s\": {seq_s:.4},\n    \
         \"threads4_s\": {par_s:.4},\n    \
         \"speedup\": {batch_speedup:.2},\n    \
         \"steal_events\": {steal_events},\n    \
         \"multi_core_host\": {multi_core},\n    \
         \"thread_scaling\": [\n{scaling_rows}    ],\n    \
         \"note\": \"speedup figures are meaningful only when multi_core_host; identity holds regardless\",\n    \
         \"reports_bit_identical\": {identical},\n    \
         \"accuracy\": {:.4}\n  }}\n}}\n",
        seq_report.accuracy(),
        crossover = hdc::SPARSE_DENSE_CROSSOVER,
        multi_core = cores > 1,
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    print!("{json}");
    assert!(identical, "parallel batch report diverged from sequential");
}
