//! End-to-end workload performance harness: runs every built-in
//! `Workload` through `Session::run_workload` on representative backends,
//! measures wall time, verifies the parallel executor's bit-identity
//! contract on a real workload, and writes a `BENCH_workloads.json`
//! summary — so the perf trajectory covers whole experiments, not just
//! kernels.
//!
//! ```sh
//! cargo run --release -p h3dfact_bench --bin bench_workloads            # full
//! cargo run --release -p h3dfact_bench --bin bench_workloads -- --quick # CI smoke
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use h3dfact::session::BackendKind;
use h3dfact::workload::{Workload, WorkloadReport};
use h3dfact_bench::workloads;

struct Row {
    workload: &'static str,
    backend: &'static str,
    units: usize,
    queries: usize,
    score: f64,
    wall_s: f64,
}

fn run(
    label: &'static str,
    kind: BackendKind,
    workload: &mut dyn Workload,
    units: usize,
    threads: usize,
) -> (Row, WorkloadReport) {
    let mut session = workloads::session(workload.spec(), kind, threads);
    let t0 = Instant::now();
    let report = session.run_workload(workload, units);
    let wall_s = t0.elapsed().as_secs_f64();
    (
        Row {
            workload: label,
            backend: kind.name(),
            units: report.units,
            queries: report.session.problems,
            score: report.score,
            wall_s,
        },
        report,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_random, n_scenes, n_puzzles, n_integers, n_trials) = if quick {
        (8, 8, 1, 4, 6)
    } else {
        (48, 32, 4, 12, 24)
    };

    // The sequential perception-attributes run doubles as the baseline of
    // the parallel bit-identity check below — identical seeds at epoch 0,
    // so one pass serves both.
    let (seq_row, seq_report) = run(
        "perception-attributes",
        BackendKind::Stochastic,
        &mut workloads::perception_attributes(),
        n_scenes,
        1,
    );

    let rows = [
        run(
            "random-factorization",
            BackendKind::Stochastic,
            &mut workloads::random(),
            n_random,
            1,
        )
        .0,
        run(
            "random-factorization",
            BackendKind::H3dFact,
            &mut workloads::random(),
            n_random,
            1,
        )
        .0,
        seq_row,
        run(
            "perception-puzzles",
            BackendKind::Stochastic,
            &mut workloads::perception_puzzles(),
            n_puzzles,
            1,
        )
        .0,
        run(
            "integer-factorization",
            BackendKind::H3dFact,
            &mut workloads::integer(),
            n_integers,
            1,
        )
        .0,
        run(
            "capacity-sweep",
            BackendKind::Stochastic,
            &mut workloads::capacity(),
            n_trials,
            1,
        )
        .0,
    ];
    let seq_row = &rows[2];

    // Parallel contract on a real workload: threads(4) must reproduce the
    // sequential report bit-for-bit while (on multi-core hosts) finishing
    // faster.
    let (par_row, par_report) = run(
        "perception-attributes",
        BackendKind::Stochastic,
        &mut workloads::perception_attributes(),
        n_scenes,
        4,
    );
    let identical = seq_report.score == par_report.score
        && seq_report.session.solved == par_report.session.solved
        && seq_report.session.total_iterations == par_report.session.total_iterations
        && seq_report.metrics == par_report.metrics
        && seq_report
            .session
            .outcomes
            .iter()
            .zip(&par_report.session.outcomes)
            .all(|(a, b)| a.decoded == b.decoded && a.iterations == b.iterations);
    let speedup = seq_row.wall_s / par_row.wall_s;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The ROADMAP 4c robustness frontier: identical problems per cell
    // (same seed, same codebooks), only the injected device faults vary,
    // so accuracy deltas isolate stuck-at rate, PCM drift, and the
    // nonlinear write curve. Both backends carry the full fault model:
    // the pcm-2die comparator maps stuck-at rate and write gain onto its
    // column survival, so its rows degrade across stuck-at severities
    // just like the crossbar path.
    let (frontier_trials, frontier_iters) = if quick { (6, 600) } else { (24, 1_000) };
    let sweep = workloads::robustness();
    let grid = workloads::severity_grid(quick);
    let frontier: Vec<(&'static str, Vec<h3dfact::workload::FrontierPoint>)> =
        [BackendKind::H3dFact, BackendKind::Pcm]
            .map(|kind| {
                (
                    kind.name(),
                    sweep.frontier(kind, &grid, frontier_trials, frontier_iters),
                )
            })
            .into_iter()
            .collect();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"workloads\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"host_available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"units\": {}, \
             \"queries\": {}, \"score\": {:.4}, \"wall_s\": {:.4}}}{comma}",
            r.workload, r.backend, r.units, r.queries, r.score, r.wall_s
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"robustness_frontier\": [");
    let n_frontier_rows: usize = frontier.iter().map(|(_, pts)| pts.len()).sum();
    let mut row_idx = 0usize;
    for (backend, points) in &frontier {
        for p in points {
            row_idx += 1;
            let comma = if row_idx < n_frontier_rows { "," } else { "" };
            let mean_iters = p
                .mean_iterations_solved
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "null".to_string());
            let _ = writeln!(
                json,
                "    {{\"backend\": \"{}\", \"stuck_at_rate\": {:.3}, \
                 \"drift_scale\": {:.4}, \"write_nonlinearity\": {:.2}, \
                 \"trials\": {frontier_trials}, \
                 \"accuracy\": {:.4}, \"mean_iterations_solved\": {mean_iters}}}{comma}",
                backend,
                p.severity.stuck_at_rate,
                p.severity.drift_scale,
                p.severity.write_nonlinearity,
                p.accuracy
            );
        }
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"parallel_perception_attributes\": {{");
    let _ = writeln!(json, "    \"units\": {},", seq_row.units);
    let _ = writeln!(json, "    \"sequential_s\": {:.4},", seq_row.wall_s);
    let _ = writeln!(json, "    \"threads4_s\": {:.4},", par_row.wall_s);
    let _ = writeln!(json, "    \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "    \"reports_bit_identical\": {identical}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_workloads.json", &json).expect("write BENCH_workloads.json");
    print!("{json}");
    assert!(
        identical,
        "parallel workload report diverged from sequential"
    );
}
