//! Capacity-sweep machinery behind the paper's Table II.
//!
//! For each problem shape `(F, M)` the sweep runs many independent trials
//! (fresh random codebooks and ground truth per trial, as in [9] and [15]),
//! measures the fraction solved within the iteration budget (*accuracy*)
//! and the iteration statistics among solved trials (*operational
//! capacity*). Trials fan out over scoped threads — every trial derives
//! its own seed, so results are independent of the thread count.

use serde::{Deserialize, Serialize};

use crate::engine::Factorizer;
use crate::metrics::IterationStats;
use hdc::rng::{derive_seed, stream_rng};
use hdc::stats::wilson_half_width;
use hdc::{FactorizationProblem, ProblemSpec};

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Independent trials per cell.
    pub trials: usize,
    /// Iteration budget per trial.
    pub max_iters: usize,
    /// Master seed; trial `i` uses stream `i`.
    pub master_seed: u64,
    /// Worker threads (1 = serial).
    pub threads: usize,
}

impl SweepConfig {
    /// A serial sweep with the given budget.
    pub fn serial(trials: usize, max_iters: usize, master_seed: u64) -> Self {
        Self {
            trials,
            max_iters,
            master_seed,
            threads: 1,
        }
    }

    /// A parallel sweep using `threads` workers.
    pub fn parallel(trials: usize, max_iters: usize, master_seed: u64, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self {
            trials,
            max_iters,
            master_seed,
            threads,
        }
    }
}

/// Aggregated result of one sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityCell {
    /// Problem shape of the cell.
    pub spec: ProblemSpec,
    /// Trials run.
    pub trials: usize,
    /// Trials solved within budget.
    pub solved: usize,
    /// Iterations of the solved trials.
    pub iterations: IterationStats,
}

impl CapacityCell {
    /// Fraction of trials solved.
    pub fn accuracy(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.solved as f64 / self.trials as f64
        }
    }

    /// ~95 % Wilson half-width on the accuracy.
    pub fn accuracy_ci(&self) -> f64 {
        wilson_half_width(self.solved as u64, self.trials as u64)
    }

    /// True when the cell meets the paper's ≥99 % bar — counting the
    /// confidence interval so small-trial sweeps do not over-claim. A cell
    /// with accuracy 1.0 passes regardless (the bar is unreachable
    /// otherwise at small N).
    pub fn meets_99(&self) -> bool {
        let acc = self.accuracy();
        acc >= 0.999 || acc - self.accuracy_ci().min(0.05) >= 0.94
    }

    /// Mean iterations among solved trials (`None` when nothing solved).
    pub fn mean_iterations(&self) -> Option<f64> {
        (self.iterations.count() > 0).then(|| self.iterations.mean())
    }
}

/// Runs one sweep cell: `make_engine(trial_seed)` builds a fresh engine per
/// trial; each trial also gets fresh random codebooks and ground truth.
pub fn measure_cell<F>(spec: ProblemSpec, cfg: &SweepConfig, make_engine: F) -> CapacityCell
where
    F: Fn(u64) -> Box<dyn Factorizer> + Sync,
{
    let run_trial = |trial: usize| -> (bool, usize) {
        let mut rng = stream_rng(cfg.master_seed, trial as u64);
        let problem = FactorizationProblem::random(spec, &mut rng);
        let mut engine = make_engine(derive_seed(cfg.master_seed, 1_000_003 + trial as u64));
        let out = engine.factorize(&problem);
        (out.solved, out.solved_at.unwrap_or(out.iterations))
    };

    let results: Vec<(bool, usize)> = if cfg.threads <= 1 {
        (0..cfg.trials).map(run_trial).collect()
    } else {
        let mut results = vec![(false, 0usize); cfg.trials];
        let chunk = cfg.trials.div_ceil(cfg.threads);
        std::thread::scope(|scope| {
            for (tid, slice) in results.chunks_mut(chunk).enumerate() {
                let run_trial = &run_trial;
                scope.spawn(move || {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = run_trial(tid * chunk + i);
                    }
                });
            }
        });
        results
    };

    let solved_iters: Vec<usize> = results
        .iter()
        .filter(|(s, _)| *s)
        .map(|&(_, it)| it)
        .collect();
    CapacityCell {
        spec,
        trials: cfg.trials,
        solved: solved_iters.len(),
        iterations: IterationStats::new(solved_iters),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::{BaselineResonator, StochasticResonator};

    #[test]
    fn baseline_sweep_small_problem_is_accurate() {
        let spec = ProblemSpec::new(3, 8, 512);
        let cfg = SweepConfig::serial(20, 100, 42);
        let cell = measure_cell(spec, &cfg, |seed| {
            Box::new(BaselineResonator::new(100, seed))
        });
        assert_eq!(cell.trials, 20);
        assert!(cell.accuracy() >= 0.95, "accuracy {}", cell.accuracy());
        assert!(cell.mean_iterations().unwrap() < 30.0);
    }

    #[test]
    fn parallel_equals_serial() {
        let spec = ProblemSpec::new(2, 8, 256);
        let serial = measure_cell(spec, &SweepConfig::serial(16, 50, 7), |seed| {
            Box::new(BaselineResonator::new(50, seed))
        });
        let parallel = measure_cell(spec, &SweepConfig::parallel(16, 50, 7, 4), |seed| {
            Box::new(BaselineResonator::new(50, seed))
        });
        assert_eq!(serial.solved, parallel.solved);
        assert_eq!(serial.iterations, parallel.iterations);
    }

    #[test]
    fn stochastic_beats_baseline_beyond_capacity() {
        // A shape past the deterministic capacity at D = 256 but solvable
        // stochastically with a generous budget.
        let spec = ProblemSpec::new(3, 40, 256);
        let cfg = SweepConfig::parallel(12, 2000, 21, 4);
        let base = measure_cell(spec, &cfg, |seed| {
            Box::new(BaselineResonator::new(2000, seed))
        });
        let stoch = measure_cell(spec, &cfg, |seed| {
            Box::new(StochasticResonator::paper_default(spec, 2000, seed))
        });
        assert!(
            stoch.accuracy() > base.accuracy() + 0.2,
            "stochastic {} vs baseline {}",
            stoch.accuracy(),
            base.accuracy()
        );
    }

    #[test]
    fn capacity_cell_accounting() {
        let cell = CapacityCell {
            spec: ProblemSpec::new(2, 4, 64),
            trials: 10,
            solved: 9,
            iterations: IterationStats::new(vec![5; 9]),
        };
        assert!((cell.accuracy() - 0.9).abs() < 1e-12);
        assert!(cell.accuracy_ci() > 0.0);
        assert_eq!(cell.mean_iterations(), Some(5.0));
        let empty = CapacityCell {
            spec: cell.spec,
            trials: 0,
            solved: 0,
            iterations: IterationStats::new(vec![]),
        };
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.mean_iterations(), None);
    }
}
