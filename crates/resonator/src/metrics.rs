//! Aggregation helpers for experiment outcomes.

use serde::{Deserialize, Serialize};

/// Order statistics over iteration counts of solved trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    sorted: Vec<usize>,
}

impl IterationStats {
    /// Builds stats from raw iteration counts (any order).
    pub fn new(mut iters: Vec<usize>) -> Self {
        iters.sort_unstable();
        Self { sorted: iters }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<usize>() as f64 / self.sorted.len() as f64
    }

    /// Median (0 when empty).
    pub fn median(&self) -> f64 {
        match self.sorted.len() {
            0 => 0.0,
            n if n % 2 == 1 => self.sorted[n / 2] as f64,
            n => (self.sorted[n / 2 - 1] + self.sorted[n / 2]) as f64 / 2.0,
        }
    }

    /// `q`-quantile by nearest-rank (`q ∈ [0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1] as f64
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> usize {
        self.sorted.last().copied().unwrap_or(0)
    }
}

/// Builds an accuracy-vs-iteration curve from per-trial correctness traces.
///
/// Each trace holds `correct_at[t]` for the iterations the trial executed;
/// trials that stopped early keep their final value (solved trials stay
/// correct, aborted trials stay wrong). Entry `t` of the result is the
/// fraction of trials correct after iteration `t+1`.
pub fn accuracy_curve(traces: &[Vec<bool>], horizon: usize) -> Vec<f64> {
    if traces.is_empty() || horizon == 0 {
        return vec![0.0; horizon];
    }
    let mut curve = vec![0.0f64; horizon];
    for trace in traces {
        for (t, slot) in curve.iter_mut().enumerate() {
            let correct = if trace.is_empty() {
                false
            } else if t < trace.len() {
                trace[t]
            } else {
                *trace.last().expect("non-empty")
            };
            if correct {
                *slot += 1.0;
            }
        }
    }
    for slot in curve.iter_mut() {
        *slot /= traces.len() as f64;
    }
    curve
}

/// First index (1-based iteration) at which `curve` reaches `target`, if
/// ever.
pub fn iterations_to_accuracy(curve: &[f64], target: f64) -> Option<usize> {
    curve.iter().position(|&a| a >= target).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_stats_order() {
        let s = IterationStats::new(vec![5, 1, 3]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.max(), 5);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.0), 1.0);
    }

    #[test]
    fn even_median() {
        let s = IterationStats::new(vec![2, 4]);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = IterationStats::new(vec![]);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn curve_extends_final_value() {
        // Trial 1 solves at iter 2 (stays correct), trial 2 never solves.
        let traces = vec![vec![false, true], vec![false, false, false, false]];
        let c = accuracy_curve(&traces, 4);
        assert_eq!(c, vec![0.0, 0.5, 0.5, 0.5]);
        assert_eq!(iterations_to_accuracy(&c, 0.5), Some(2));
        assert_eq!(iterations_to_accuracy(&c, 0.9), None);
    }

    #[test]
    fn curve_handles_empty() {
        assert!(accuracy_curve(&[], 3).iter().all(|&x| x == 0.0));
    }
}
