//! The lockstep batched resonator: `B` factorization problems sharing one
//! codebook set advance one iteration together.
//!
//! The per-problem loop ([`crate::engine::ResonatorLoop`]) is
//! matrix–*vector* bound: every iteration streams each codebook through
//! the similarity and projection MVMs for one query, so memory bandwidth,
//! not compute, limits throughput. [`BatchedResonator`] turns both MVMs
//! into matrix–matrix products over the whole batch
//! ([`PackedCodebook::similarities_batch_into`] /
//! [`PackedCodebook::weighted_sums_batch_into`]): each codebook tile is
//! loaded once per `B` queries instead of once per query.
//!
//! # Bit-exactness contract
//!
//! A lockstep batch is **bit-identical, per problem, to running each
//! problem alone** through `ResonatorLoop::run` with
//! [`crate::software::SoftwareKernels`] at the same seeds:
//!
//! - every problem owns its loop RNG (degenerate re-draws) and kernel RNG
//!   (similarity noise), seeded exactly as the sequential path seeds them,
//!   and draws from them in the same order;
//! - the batched MVMs are value-identical to the per-query kernels (exact
//!   integers for similarities, identical floating-point evaluation order
//!   for projections);
//! - per-problem convergence masks retire finished problems (solved,
//!   cycle abort, fixed point, budget) by dropping them from the packed
//!   batch — the remaining problems' columns are untouched, so their
//!   trajectories cannot be perturbed.
//!
//! Only the wall-clock [`PhaseTimes`] differ: batch phase times are
//! attributed evenly across the problems active when they were measured.
//!
//! All iteration scratch (the packed query batch, the `B × M` weight
//! block, the `B × D` sum block) is owned by the batch and reused across
//! iterations — nothing proportional to `M` or `D` allocates inside the
//! stepping loop (the batched projection kernel keeps one documented
//! `O(B)` regime-flag allocation per call; see
//! [`PackedCodebook::weighted_sums_batch_into`]).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::Rng;

use crate::activation::Activation;
use crate::convergence::CycleDetector;
use crate::engine::{
    CycleAction, DegeneratePolicy, FactorizationOutcome, LoopConfig, PhaseTimes, UpdateOrder,
};
use hdc::rng::rng_from_seed;
use hdc::stats::normal;
use hdc::{BipolarVector, Codebook, PackedBatch};

/// One problem of a lockstep batch: the query, optional ground truth, and
/// the two seeds the sequential path would have used for it (the kernel
/// RNG that draws similarity noise and the loop RNG that drives
/// degenerate re-draws).
#[derive(Debug, Clone, Copy)]
pub struct LockstepProblem<'a> {
    /// The product vector to factorize.
    pub query: &'a BipolarVector,
    /// Ground-truth indices, when known.
    pub truth: Option<&'a [usize]>,
    /// Seed of the kernel (similarity-noise) RNG.
    pub kernel_seed: u64,
    /// Seed of the loop (degenerate-policy) RNG.
    pub loop_seed: u64,
}

/// Per-problem lockstep state: everything `ResonatorLoop::run` keeps on
/// its stack for one problem, held per batch slot instead.
struct Slot {
    estimates: Vec<BipolarVector>,
    next: Vec<BipolarVector>,
    unbound: BipolarVector,
    /// Post-activation similarity weights (`M`), this factor step.
    weights: Vec<f64>,
    loop_rng: StdRng,
    noise_rng: StdRng,
    detector: CycleDetector,
    outcome: FactorizationOutcome,
    /// Fixed-point flag of the current iteration (set before decode).
    fixed_point: bool,
}

/// The lockstep batched stepper over software resonator kernels (identity
/// or quantized activation, optional Gaussian similarity noise and
/// rectification — the parameter space of
/// [`crate::software::SoftwareKernels`]).
///
/// See the [module docs](self) for the bit-exactness contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedResonator {
    config: LoopConfig,
    noise_sigma: f64,
    rectify: bool,
    activation: Activation,
}

impl BatchedResonator {
    /// Creates a stepper with the given loop configuration and software
    /// kernel stochasticity model.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_iters == 0` or `noise_sigma < 0`.
    pub fn new(
        config: LoopConfig,
        noise_sigma: f64,
        rectify: bool,
        activation: Activation,
    ) -> Self {
        assert!(config.max_iters > 0, "need at least one iteration");
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        Self {
            config,
            noise_sigma,
            rectify,
            activation,
        }
    }

    /// The loop configuration in use.
    pub fn config(&self) -> LoopConfig {
        self.config
    }

    /// Runs every problem of the batch to completion, advancing all still-
    /// active problems one iteration at a time, and returns per-problem
    /// outcomes in input order — bit-identical (up to wall-clock
    /// [`PhaseTimes`]) to solving each problem alone at the same seeds.
    ///
    /// # Panics
    ///
    /// Panics if `codebooks` is empty or shapes disagree with the queries
    /// or truths.
    pub fn run(
        &self,
        codebooks: &[Codebook],
        problems: &[LockstepProblem<'_>],
    ) -> Vec<FactorizationOutcome> {
        if problems.is_empty() {
            return Vec::new();
        }
        assert!(!codebooks.is_empty(), "need at least one codebook");
        let f = codebooks.len();
        let d = codebooks[0].dim();
        let m = codebooks[0].len();
        assert!(
            codebooks.iter().all(|cb| cb.dim() == d && cb.len() == m),
            "codebooks must share shape"
        );
        for p in problems {
            assert_eq!(p.query.dim(), d, "query dimension mismatch");
            if let Some(t) = p.truth {
                assert_eq!(t.len(), f, "truth length != factors");
            }
        }
        let b = problems.len();

        // The initial state is identical for every problem: every
        // candidate in superposition. Computed once, cloned per slot.
        let init: Vec<BipolarVector> = codebooks.iter().map(|cb| cb.superposition()).collect();
        let mut slots: Vec<Slot> = problems
            .iter()
            .map(|p| Slot {
                estimates: init.clone(),
                next: init.clone(),
                unbound: BipolarVector::ones(d),
                weights: vec![0.0f64; m],
                loop_rng: rng_from_seed(p.loop_seed),
                noise_rng: rng_from_seed(p.kernel_seed),
                detector: CycleDetector::new(),
                outcome: FactorizationOutcome {
                    solved: false,
                    iterations: 0,
                    solved_at: None,
                    converged: false,
                    decoded: vec![0; f],
                    cycle: None,
                    revisits: 0,
                    degenerate_events: 0,
                    correct_at: Vec::new(),
                    cosines: Vec::new(),
                    times: PhaseTimes::default(),
                },
                fixed_point: false,
            })
            .collect();

        // Batch-owned scratch, reused across all iterations.
        let mut batch = PackedBatch::with_capacity(b, d);
        let mut sims = vec![0.0f64; b * m];
        let mut wbuf = vec![0.0f64; b * m];
        let mut sums = vec![0.0f64; b * d];
        let mut sparse = vec![0.0f64; m];
        let mut sparse_sums = vec![0.0f64; d];
        let mut composed = BipolarVector::ones(d);
        // Slot indices still running (ascending), and the subset of the
        // active list taking the batched projection this factor step.
        let mut active: Vec<usize> = (0..b).collect();
        let mut projecting: Vec<usize> = Vec::with_capacity(b);

        for t in 1..=self.config.max_iters {
            if active.is_empty() {
                break;
            }
            let n_active = active.len() as u32;
            for &s in &active {
                slots[s].outcome.iterations = t;
            }
            for fi in 0..f {
                // Unbind per problem (cheap XNOR walks), then pack the
                // active problems' queries for the batched similarity.
                let t0 = Instant::now();
                batch.clear();
                for &s in &active {
                    let slot = &mut slots[s];
                    let Slot {
                        unbound,
                        estimates,
                        next,
                        ..
                    } = slot;
                    unbound.copy_from(problems[s].query);
                    for jf in (0..f).filter(|&jf| jf != fi) {
                        let other = match self.config.update_order {
                            UpdateOrder::Sequential => {
                                if jf < fi {
                                    &next[jf]
                                } else {
                                    &estimates[jf]
                                }
                            }
                            UpdateOrder::Synchronous => &estimates[jf],
                        };
                        unbound.bind_assign(other);
                    }
                    batch.push(&slot.unbound);
                }
                let unbind_t = t0.elapsed() / n_active;

                let t1 = Instant::now();
                codebooks[fi]
                    .packed()
                    .similarities_batch_into(&batch, &mut sims[..active.len() * m]);
                // Per-problem post-processing in slot order: noise from
                // the slot's own kernel RNG, rectification, activation —
                // the exact op sequence of `similarity_weights_into`.
                projecting.clear();
                for (k, &s) in active.iter().enumerate() {
                    let slot = &mut slots[s];
                    slot.weights.copy_from_slice(&sims[k * m..(k + 1) * m]);
                    if self.noise_sigma > 0.0 {
                        for w in slot.weights.iter_mut() {
                            *w += normal(0.0, self.noise_sigma, &mut slot.noise_rng);
                        }
                    }
                    if self.rectify {
                        for w in slot.weights.iter_mut() {
                            if *w < 0.0 {
                                *w = 0.0;
                            }
                        }
                    }
                    self.activation.apply(&mut slot.weights);
                    projecting.push(s);
                }
                let similarity_t = t1.elapsed() / n_active;

                let t2 = Instant::now();
                // Degenerate (all-zero activation) problems leave the
                // projection set and resolve via their own loop RNG,
                // exactly as the sequential loop does.
                projecting.retain(|&s| {
                    let slot = &mut slots[s];
                    if slot.weights.iter().any(|&w| w != 0.0) {
                        return true;
                    }
                    slot.outcome.degenerate_events += 1;
                    match self.config.degenerate {
                        DegeneratePolicy::KeepPrevious => {
                            let Slot {
                                next, estimates, ..
                            } = slot;
                            next[fi].copy_from(&estimates[fi]);
                        }
                        DegeneratePolicy::RandomCandidate => {
                            let r = slot.loop_rng.gen_range(0..m);
                            slot.next[fi].copy_from(codebooks[fi].vector(r));
                        }
                        DegeneratePolicy::RandomSparse { k } => {
                            sparse.fill(0.0);
                            for _ in 0..k.clamp(1, m) {
                                sparse[slot.loop_rng.gen_range(0..m)] = 1.0;
                            }
                            codebooks[fi]
                                .packed()
                                .weighted_sums_into(&sparse, &mut sparse_sums);
                            slot.next[fi].assign_signs_of_reals(&sparse_sums);
                        }
                    }
                    false
                });
                if !projecting.is_empty() {
                    for (p, &s) in projecting.iter().enumerate() {
                        wbuf[p * m..(p + 1) * m].copy_from_slice(&slots[s].weights);
                    }
                    codebooks[fi].packed().weighted_sums_batch_into(
                        &wbuf[..projecting.len() * m],
                        &mut sums[..projecting.len() * d],
                    );
                    for (p, &s) in projecting.iter().enumerate() {
                        slots[s].next[fi].assign_signs_of_reals(&sums[p * d..(p + 1) * d]);
                    }
                }
                let projection_t = t2.elapsed() / n_active;

                for &s in &active {
                    let times = &mut slots[s].outcome.times;
                    times.unbind += unbind_t;
                    times.similarity += similarity_t;
                    times.projection += projection_t;
                }
            }

            let t3 = Instant::now();
            for &s in &active {
                let slot = &mut slots[s];
                slot.fixed_point = slot.next == slot.estimates;
                std::mem::swap(&mut slot.estimates, &mut slot.next);
            }
            // Decode through the cleanup memory, batched per factor: the
            // batched similarities are the exact dot products, and the
            // arg-max replicates `Codebook::cleanup_abs` (largest |dot|,
            // last index winning ties).
            for (fi, cb) in codebooks.iter().enumerate() {
                batch.clear();
                for &s in &active {
                    batch.push(&slots[s].estimates[fi]);
                }
                cb.packed()
                    .similarities_batch_into(&batch, &mut sims[..active.len() * m]);
                for (k, &s) in active.iter().enumerate() {
                    let dots = &sims[k * m..(k + 1) * m];
                    let mut best_j = 0usize;
                    let mut best_abs = (dots[0] as i64).abs();
                    for (j, &dot) in dots.iter().enumerate().skip(1) {
                        let a = (dot as i64).abs();
                        if a >= best_abs {
                            best_j = j;
                            best_abs = a;
                        }
                    }
                    slots[s].outcome.decoded[fi] = best_j;
                }
            }
            // Retirement sweep, replicating the sequential loop's order:
            // correctness break, then cycle handling, then fixed point.
            active.retain(|&s| {
                let slot = &mut slots[s];
                let correct = match problems[s].truth {
                    Some(tr) => slot.outcome.decoded == tr,
                    None => {
                        composed.copy_from(codebooks[0].vector(slot.outcome.decoded[0]));
                        for (cb, &i) in codebooks.iter().zip(&slot.outcome.decoded).skip(1) {
                            composed.bind_assign(cb.vector(i));
                        }
                        composed.cosine(problems[s].query).abs() >= self.config.accept_threshold
                    }
                };
                if self.config.record_trajectory {
                    slot.outcome.correct_at.push(correct);
                    if let Some(tr) = problems[s].truth {
                        slot.outcome.cosines.push(
                            (0..f)
                                .map(|fi| slot.estimates[fi].cosine(codebooks[fi].vector(tr[fi])))
                                .collect(),
                        );
                    }
                }
                if correct {
                    slot.outcome.solved = true;
                    slot.outcome.solved_at = Some(t);
                    return false;
                }
                match self.config.cycle_action {
                    CycleAction::Ignore => {}
                    CycleAction::Abort | CycleAction::Record => {
                        if let Some(info) = slot.detector.observe(&slot.estimates, t) {
                            if slot.outcome.cycle.is_none() {
                                slot.outcome.cycle = Some(info);
                            }
                            if self.config.cycle_action == CycleAction::Abort {
                                return false;
                            }
                        }
                    }
                }
                if slot.fixed_point && self.config.stop_on_fixed_point {
                    slot.outcome.converged = true;
                    return false;
                }
                true
            });
            let other_t = t3.elapsed() / n_active;
            for slot in slots.iter_mut().filter(|slot| slot.outcome.iterations == t) {
                slot.outcome.times.other += other_t;
            }
        }

        slots
            .into_iter()
            .map(|slot| {
                let mut outcome = slot.outcome;
                outcome.revisits = slot.detector.revisits();
                if outcome.solved {
                    outcome.converged = true;
                }
                outcome
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Factorizer, ResonatorLoop};
    use crate::software::SoftwareKernels;
    use crate::{BaselineResonator, StochasticResonator};
    use hdc::rng::derive_seed;
    use hdc::{FactorizationProblem, ProblemSpec};

    fn problems(
        n: usize,
        spec: ProblemSpec,
        seed: u64,
    ) -> (Vec<Codebook>, Vec<FactorizationProblem>) {
        let mut rng = rng_from_seed(seed);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let probs = (0..n)
            .map(|_| FactorizationProblem::with_codebooks(&books, &mut rng))
            .collect();
        (books, probs)
    }

    /// Strips the wall-clock profile before exact comparison.
    fn functional(outcome: &FactorizationOutcome) -> FactorizationOutcome {
        let mut o = outcome.clone();
        o.times = PhaseTimes::default();
        o
    }

    #[test]
    fn lockstep_matches_sequential_loop_bit_for_bit() {
        let spec = ProblemSpec::new(3, 8, 256);
        let (books, probs) = problems(6, spec, 900);
        let config = LoopConfig::stochastic(300);
        let sigma = 0.139 * (spec.dim as f64).sqrt();
        let act = Activation::noise_referenced(4, spec.dim, 3.0);

        let items: Vec<LockstepProblem<'_>> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| LockstepProblem {
                query: p.product(),
                truth: Some(p.true_indices()),
                kernel_seed: derive_seed(77, i as u64),
                loop_seed: derive_seed(derive_seed(77, i as u64), 0xD15C),
            })
            .collect();
        let batched = BatchedResonator::new(config, sigma, true, act).run(&books, &items);

        for (i, p) in probs.iter().enumerate() {
            let run_seed = derive_seed(77, i as u64);
            let mut kernels = SoftwareKernels::new(&books, sigma, true, act, run_seed);
            let solo = ResonatorLoop::new(config).run(
                &mut kernels,
                &books,
                p.product(),
                Some(p.true_indices()),
                derive_seed(run_seed, 0xD15C),
            );
            assert_eq!(
                functional(&batched[i]),
                functional(&solo),
                "problem {i} diverged from its solo run"
            );
        }
    }

    #[test]
    fn engine_lockstep_matches_sequential_calls() {
        let spec = ProblemSpec::new(2, 8, 256);
        let (books, probs) = problems(5, spec, 901);
        let makes: [fn() -> Box<dyn LockstepEngine>; 2] = [
            || Box::new(BaselineResonator::new(200, 5)),
            || {
                Box::new(StochasticResonator::paper_default(
                    ProblemSpec::new(2, 8, 256),
                    200,
                    5,
                ))
            },
        ];
        for make in makes {
            let mut seq = make();
            let expected: Vec<FactorizationOutcome> = probs
                .iter()
                .map(|p| seq.solve_one(&books, p.product(), Some(p.true_indices())))
                .collect();
            let mut batched = make();
            let queries: Vec<(&BipolarVector, Option<&[usize]>)> = probs
                .iter()
                .map(|p| (p.product(), Some(p.true_indices())))
                .collect();
            let got = batched.solve_lockstep(&books, &queries);
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(functional(g), functional(e));
            }
        }
    }

    /// Object-safe shim so the test drives both engines uniformly.
    trait LockstepEngine {
        fn solve_one(
            &mut self,
            books: &[Codebook],
            q: &BipolarVector,
            t: Option<&[usize]>,
        ) -> FactorizationOutcome;
        fn solve_lockstep(
            &mut self,
            books: &[Codebook],
            queries: &[(&BipolarVector, Option<&[usize]>)],
        ) -> Vec<FactorizationOutcome>;
    }

    impl LockstepEngine for BaselineResonator {
        fn solve_one(
            &mut self,
            books: &[Codebook],
            q: &BipolarVector,
            t: Option<&[usize]>,
        ) -> FactorizationOutcome {
            self.factorize_query(books, q, t)
        }
        fn solve_lockstep(
            &mut self,
            books: &[Codebook],
            queries: &[(&BipolarVector, Option<&[usize]>)],
        ) -> Vec<FactorizationOutcome> {
            self.factorize_lockstep(books, queries)
        }
    }

    impl LockstepEngine for StochasticResonator {
        fn solve_one(
            &mut self,
            books: &[Codebook],
            q: &BipolarVector,
            t: Option<&[usize]>,
        ) -> FactorizationOutcome {
            self.factorize_query(books, q, t)
        }
        fn solve_lockstep(
            &mut self,
            books: &[Codebook],
            queries: &[(&BipolarVector, Option<&[usize]>)],
        ) -> Vec<FactorizationOutcome> {
            self.factorize_lockstep(books, queries)
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (books, _) = problems(1, ProblemSpec::new(2, 4, 128), 903);
        let out = BatchedResonator::new(LoopConfig::baseline(10), 0.0, false, Activation::Identity)
            .run(&books, &[]);
        assert!(out.is_empty());
    }
}
