//! Similarity activation functions `g(·)`.
//!
//! The activation sits between the similarity MVM and the projection MVM.
//! The baseline resonator uses the identity (all similarity mass projects
//! back). H3DFact's hardware realizes `g` with a low-precision ADC whose
//! full-scale is tuned relative to the random-similarity noise floor
//! (`VTGT` adjustment, paper Sec. V-D): similarities below about half an
//! LSB collapse to zero, sparsifying the search, while device noise decides
//! the fate of borderline candidates — the stochastic exploration that
//! breaks limit cycles.

use serde::{Deserialize, Serialize};

/// Activation applied to the raw (possibly noisy) similarity vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Pass similarities through unchanged (baseline resonator).
    #[default]
    Identity,
    /// Mid-tread uniform quantizer with `bits` resolution saturating at
    /// `±full_scale` — the algorithm-level model of the SAR ADC readout.
    Quantized {
        /// Resolution in bits (sign included); the paper uses 4.
        bits: u8,
        /// Saturation magnitude in dot-product units.
        full_scale: f64,
    },
    /// Hard threshold: values with `|a| < theta` become zero, others pass
    /// unchanged (the in-memory-factorizer style nonlinearity of [15]).
    Threshold {
        /// Zeroing threshold in dot-product units.
        theta: f64,
    },
}

impl Activation {
    /// The paper's 4-bit ADC activation with the full scale referenced to
    /// the random-similarity noise floor `sqrt(D)`: one LSB spans
    /// `lsb_sigmas · sqrt(dim)` dot-product units.
    ///
    /// With the default `lsb_sigmas = 3`, random cross-talk (σ = √D) rarely
    /// crosses the first code boundary on its own, but device noise pushes
    /// borderline candidates over — sparse stochastic exploration.
    pub fn noise_referenced(bits: u8, dim: usize, lsb_sigmas: f64) -> Self {
        assert!(bits >= 2, "need at least 2 bits");
        assert!(lsb_sigmas > 0.0, "lsb_sigmas must be positive");
        let max_code = ((1u32 << (bits - 1)) - 1) as f64;
        Activation::Quantized {
            bits,
            full_scale: lsb_sigmas * (dim as f64).sqrt() * max_code,
        }
    }

    /// Applies the activation element-wise in place.
    pub fn apply(&self, values: &mut [f64]) {
        match *self {
            Activation::Identity => {}
            Activation::Quantized { bits, full_scale } => {
                let max_code = ((1u32 << (bits - 1)) - 1) as f64;
                let step = full_scale / max_code;
                for v in values.iter_mut() {
                    let code = (*v / step).round().clamp(-max_code, max_code);
                    *v = code * step;
                }
            }
            Activation::Threshold { theta } => {
                for v in values.iter_mut() {
                    if v.abs() < theta {
                        *v = 0.0;
                    }
                }
            }
        }
    }

    /// True when the activation can output an all-zero vector for non-zero
    /// input (i.e. the loop must handle the degenerate case).
    pub fn can_zero(&self) -> bool {
        !matches!(self, Activation::Identity)
    }

    /// The quantization step (LSB) if this is a quantized activation.
    pub fn step(&self) -> Option<f64> {
        match *self {
            Activation::Quantized { bits, full_scale } => {
                let max_code = ((1u32 << (bits - 1)) - 1) as f64;
                Some(full_scale / max_code)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let mut v = vec![1.5, -3.0, 0.0];
        Activation::Identity.apply(&mut v);
        assert_eq!(v, vec![1.5, -3.0, 0.0]);
        assert!(!Activation::Identity.can_zero());
    }

    #[test]
    fn quantizer_zeroes_small_values() {
        let a = Activation::Quantized {
            bits: 4,
            full_scale: 70.0,
        };
        let step = a.step().unwrap();
        assert!((step - 10.0).abs() < 1e-12);
        let mut v = vec![4.9, -4.9, 5.1, 70.0, 1e9, -1e9];
        a.apply(&mut v);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 10.0);
        assert_eq!(v[3], 70.0);
        assert_eq!(v[4], 70.0, "saturates high");
        assert_eq!(v[5], -70.0, "saturates low");
    }

    #[test]
    fn threshold_zeroes_below_theta() {
        let a = Activation::Threshold { theta: 5.0 };
        let mut v = vec![4.0, -4.0, 6.0, -6.0];
        a.apply(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 6.0, -6.0]);
    }

    #[test]
    fn noise_referenced_scaling() {
        let a = Activation::noise_referenced(4, 1024, 3.0);
        // LSB = 3 · sqrt(1024) = 96.
        assert!((a.step().unwrap() - 96.0).abs() < 1e-9);
        if let Activation::Quantized { full_scale, .. } = a {
            assert!((full_scale - 96.0 * 7.0).abs() < 1e-9);
        } else {
            panic!("expected quantized activation");
        }
    }

    #[test]
    fn more_bits_means_finer_step() {
        let a4 = Activation::noise_referenced(4, 1024, 3.0);
        // Same full scale, higher resolution.
        let fs = match a4 {
            Activation::Quantized { full_scale, .. } => full_scale,
            _ => unreachable!(),
        };
        let a8 = Activation::Quantized {
            bits: 8,
            full_scale: fs,
        };
        assert!(a8.step().unwrap() < a4.step().unwrap());
    }
}
