//! Fixed-point and limit-cycle detection for the resonator state.
//!
//! The deterministic resonator evolves on a finite state space (tuples of
//! bipolar estimates), so any non-converging trajectory must eventually
//! revisit a state and then cycle forever. Detecting the first revisit lets
//! the baseline engine declare failure early (a large speed-up for the
//! Table II sweep) and provides the cycle statistics behind Fig. 2b.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use hdc::BipolarVector;

/// A detected state recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleInfo {
    /// Iteration at which the revisited state was first seen.
    pub first_seen: usize,
    /// Iteration at which the revisit was detected.
    pub detected_at: usize,
}

impl CycleInfo {
    /// Cycle period (`detected_at − first_seen`).
    pub fn period(&self) -> usize {
        self.detected_at - self.first_seen
    }
}

/// Hash-based detector over the joint estimate state.
///
/// Collisions are theoretically possible but astronomically unlikely for
/// the experiment sizes here (64-bit hashes, ≤ millions of states); the
/// deterministic engine additionally only *stops* on a detected cycle, it
/// never reports success from one.
#[derive(Debug, Clone, Default)]
pub struct CycleDetector {
    seen: HashMap<u64, usize>,
    revisits: usize,
}

impl CycleDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hashes the joint state of all factor estimates.
    pub fn state_hash(estimates: &[BipolarVector]) -> u64 {
        let mut h = DefaultHasher::new();
        for e in estimates {
            e.words().hash(&mut h);
        }
        h.finish()
    }

    /// Records the state at iteration `t`; returns cycle info if this state
    /// was seen before.
    pub fn observe(&mut self, estimates: &[BipolarVector], t: usize) -> Option<CycleInfo> {
        let key = Self::state_hash(estimates);
        match self.seen.insert(key, t) {
            Some(first_seen) => {
                self.revisits += 1;
                Some(CycleInfo {
                    first_seen,
                    detected_at: t,
                })
            }
            None => None,
        }
    }

    /// Number of revisits observed so far (a stochastic engine may revisit
    /// and escape; this counts every recurrence).
    pub fn revisits(&self) -> usize {
        self.revisits
    }

    /// Number of distinct states seen.
    pub fn distinct_states(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    #[test]
    fn detects_exact_revisit() {
        let mut rng = rng_from_seed(100);
        let a = BipolarVector::random(128, &mut rng);
        let b = BipolarVector::random(128, &mut rng);
        let mut det = CycleDetector::new();
        assert!(det.observe(&[a.clone(), b.clone()], 0).is_none());
        assert!(
            det.observe(&[b.clone(), a.clone()], 1).is_none(),
            "order matters"
        );
        let info = det.observe(&[a.clone(), b.clone()], 5).expect("revisit");
        assert_eq!(info.first_seen, 0);
        assert_eq!(info.detected_at, 5);
        assert_eq!(info.period(), 5);
        assert_eq!(det.revisits(), 1);
        assert_eq!(det.distinct_states(), 2);
    }

    #[test]
    fn distinct_states_do_not_trigger() {
        let mut rng = rng_from_seed(101);
        let mut det = CycleDetector::new();
        for t in 0..50 {
            let v = BipolarVector::random(256, &mut rng);
            assert!(det.observe(&[v], t).is_none());
        }
        assert_eq!(det.distinct_states(), 50);
        assert_eq!(det.revisits(), 0);
    }

    #[test]
    fn hash_is_stable() {
        let mut rng = rng_from_seed(102);
        let v = BipolarVector::random(64, &mut rng);
        let h1 = CycleDetector::state_hash(std::slice::from_ref(&v));
        let h2 = CycleDetector::state_hash(std::slice::from_ref(&v));
        assert_eq!(h1, h2);
    }
}
