//! The shared resonator iteration, generic over hardware kernels.
//!
//! [`ResonatorLoop`] implements the paper's state-space dynamics once; what
//! varies between the *baseline*, the *software stochastic model*, and the
//! *simulated H3DFact hardware* is only how the three computational kernels
//! (unbind, similarity, projection) are realized — abstracted by
//! [`ResonatorKernels`] and implemented in `software.rs` (this crate) and in
//! `h3dfact-core::accelerator` (crossbars + ADCs).

use std::time::{Duration, Instant};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::convergence::{CycleDetector, CycleInfo};
use hdc::rng::rng_from_seed;
use hdc::{BipolarVector, Codebook, FactorizationProblem};

/// The three factorization kernels, realized in software or on simulated
/// hardware.
///
/// # Scratch-buffer contract
///
/// Every kernel writes into caller-provided output storage and must not
/// allocate per call. [`ResonatorLoop::run`] owns all iteration scratch —
/// the unbind target, the `M`-length weight buffer, the `D`-length sum
/// buffer, and the double-buffered estimates — and reuses it across all
/// iterations of a run. Kernel implementations may keep *internal* scratch
/// for intermediate stages (e.g. pre-ADC currents), sized once at
/// construction; they must never retain references to the buffers passed
/// in.
pub trait ResonatorKernels {
    /// Hypervector dimension `D`.
    fn dim(&self) -> usize;
    /// Number of factors `F`.
    fn factors(&self) -> usize;
    /// Codebook size `M`.
    fn codebook_size(&self) -> usize;

    /// Unbinding `q_f = s ⊙ ⊙_{j≠f} x̂_j` (tier-1 XNOR in H3DFact), written
    /// into `out` (dimension `D`).
    fn unbind_into(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    );

    /// Similarity + activation: writes the `M` projection weights
    /// `g(X_fᵀ q + noise)` into `out` (tier-3 RRAM MVM + tier-1 ADC in
    /// H3DFact).
    fn similarity_weights_into(&mut self, factor: usize, query: &BipolarVector, out: &mut [f64]);

    /// Projection pre-sign sums `X_f · w`, written into `out` (length `D`;
    /// tier-2 RRAM MVM in H3DFact).
    fn project_into(&mut self, factor: usize, weights: &[f64], out: &mut [f64]);

    /// Hook called at the start of every run (reset per-run hardware state;
    /// cumulative counters may persist).
    fn begin_run(&mut self) {}

    /// Hook called once at the end of every iteration, after all factors
    /// have been updated — the place to step hardware state that co-evolves
    /// with the resonator (e.g. thermal coupling in the approximate tiled
    /// target). Default: no-op.
    fn end_iteration(&mut self) {}
}

/// What to do when the activation zeroes every similarity weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegeneratePolicy {
    /// Keep the previous estimate (deterministic engines).
    #[default]
    KeepPrevious,
    /// Re-draw the estimate as one uniformly random codevector — the
    /// minimal stochastic exploration kick.
    RandomCandidate,
    /// Project a random sparse superposition of `k` candidates — the
    /// search-in-superposition exploration of the in-memory factorizer
    /// [15]: when nothing crosses the readout threshold, device noise
    /// effectively activates a few random columns.
    RandomSparse {
        /// Number of randomly activated candidates.
        k: usize,
    },
}

/// Estimate update schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UpdateOrder {
    /// In-place (asynchronous) updates: factor `f` sees the already-updated
    /// estimates of factors `< f`. Converges faster and is the schedule the
    /// resonator literature recommends; H3DFact's tier pipeline also
    /// processes factors one after another.
    #[default]
    Sequential,
    /// Jacobi-style updates from the previous iteration's estimates only.
    Synchronous,
}

/// What to do when a state recurrence (limit cycle) is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CycleAction {
    /// Stop immediately: a deterministic trajectory can never leave the
    /// cycle (large speed-up for failure cases in capacity sweeps).
    Abort,
    /// Keep iterating but count revisits (stochastic engines escape).
    #[default]
    Record,
    /// Disable detection entirely (saves the hashing cost).
    Ignore,
}

/// Configuration of the iteration loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopConfig {
    /// Iteration budget.
    pub max_iters: usize,
    /// Degenerate-activation policy.
    pub degenerate: DegeneratePolicy,
    /// Limit-cycle handling.
    pub cycle_action: CycleAction,
    /// Estimate update schedule.
    pub update_order: UpdateOrder,
    /// Stop when the joint state reaches a fixed point (only meaningful for
    /// deterministic kernels).
    pub stop_on_fixed_point: bool,
    /// Record per-iteration correctness/cosine traces in the outcome.
    pub record_trajectory: bool,
    /// Minimum cosine between the re-composed decoded product and the query
    /// for declaring success when no ground truth is supplied.
    pub accept_threshold: f64,
}

impl LoopConfig {
    /// Deterministic-baseline defaults (early abort on cycles and fixed
    /// points).
    pub fn baseline(max_iters: usize) -> Self {
        Self {
            max_iters,
            degenerate: DegeneratePolicy::KeepPrevious,
            cycle_action: CycleAction::Abort,
            update_order: UpdateOrder::Sequential,
            stop_on_fixed_point: true,
            record_trajectory: false,
            accept_threshold: 0.5,
        }
    }

    /// Stochastic-engine defaults (run the full budget, record revisits).
    pub fn stochastic(max_iters: usize) -> Self {
        Self {
            max_iters,
            degenerate: DegeneratePolicy::RandomSparse { k: 3 },
            cycle_action: CycleAction::Record,
            update_order: UpdateOrder::Sequential,
            stop_on_fixed_point: false,
            record_trajectory: false,
            accept_threshold: 0.5,
        }
    }
}

/// Wall-clock time spent in each kernel of a run (Fig. 1c's profile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Unbinding (XNOR) time.
    pub unbind: Duration,
    /// Similarity-MVM (+ activation) time.
    pub similarity: Duration,
    /// Projection-MVM (+ sign) time.
    pub projection: Duration,
    /// Everything else: decode, bookkeeping, cycle detection.
    pub other: Duration,
}

impl PhaseTimes {
    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.unbind + self.similarity + self.projection + self.other
    }

    /// Fraction of total time spent in the two MVM phases.
    pub fn mvm_fraction(&self) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        (self.similarity + self.projection).as_secs_f64() / t
    }
}

/// Result of one factorization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorizationOutcome {
    /// Whether the decoded factors were accepted as the solution.
    pub solved: bool,
    /// Iterations actually executed.
    pub iterations: usize,
    /// First iteration (1-based) at which the decode was correct.
    pub solved_at: Option<usize>,
    /// Whether a fixed point was reached.
    pub converged: bool,
    /// Final decoded item index per factor.
    pub decoded: Vec<usize>,
    /// First detected limit cycle, if any.
    pub cycle: Option<CycleInfo>,
    /// Number of state revisits observed.
    pub revisits: usize,
    /// Number of degenerate (all-zero activation) events.
    pub degenerate_events: usize,
    /// Per-iteration decode-correct flags (only with ground truth and
    /// `record_trajectory`).
    pub correct_at: Vec<bool>,
    /// Per-iteration, per-factor cosine of the estimate to the true factor
    /// (only with ground truth and `record_trajectory`).
    pub cosines: Vec<Vec<f64>>,
    /// Kernel wall-time profile of the run.
    pub times: PhaseTimes,
}

/// Kernel-level interface implemented by every factorization engine in
/// the workspace (software baseline, software stochastic, simulated
/// hardware). The facade crate's `Backend` trait extends it with naming,
/// capability discovery, batching, and uniform run reporting.
pub trait Factorizer {
    /// Factorizes a complete problem (codebooks + clean product + truth).
    fn factorize(&mut self, problem: &FactorizationProblem) -> FactorizationOutcome {
        self.factorize_query(
            problem.codebooks(),
            problem.product(),
            Some(problem.true_indices()),
        )
    }

    /// Factorizes an arbitrary (possibly noisy) query over the given
    /// codebooks; `truth` enables exact accuracy accounting when known.
    fn factorize_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome;
}

/// The shared synchronous-update iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResonatorLoop {
    config: LoopConfig,
}

impl ResonatorLoop {
    /// Creates a loop with the given configuration.
    pub fn new(config: LoopConfig) -> Self {
        assert!(config.max_iters > 0, "need at least one iteration");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> LoopConfig {
        self.config
    }

    /// Runs the factorization to completion.
    ///
    /// `loop_seed` drives loop-level randomness (degenerate re-draws);
    /// kernel-level stochasticity is owned by the kernels.
    ///
    /// # Panics
    ///
    /// Panics if codebook shapes disagree with the kernels or the query
    /// dimension is wrong.
    pub fn run<K: ResonatorKernels>(
        &self,
        kernels: &mut K,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
        loop_seed: u64,
    ) -> FactorizationOutcome {
        let f = kernels.factors();
        assert_eq!(codebooks.len(), f, "codebook count != kernel factors");
        assert_eq!(query.dim(), kernels.dim(), "query dimension mismatch");
        if let Some(t) = truth {
            assert_eq!(t.len(), f, "truth length != factors");
        }
        let mut rng = rng_from_seed(loop_seed);
        kernels.begin_run();

        // Initial estimates: every candidate in superposition. The loop is
        // double-buffered — `estimates` holds the state entering an
        // iteration, `next` receives the updated factors, and the two swap
        // at the iteration boundary — so no per-iteration clone exists.
        let mut estimates: Vec<BipolarVector> =
            codebooks.iter().map(|cb| cb.superposition()).collect();
        let mut next: Vec<BipolarVector> = estimates.clone();

        // Scratch owned by the loop and reused across every iteration (the
        // kernels write into these; see the trait's scratch contract).
        let d = kernels.dim();
        let m = kernels.codebook_size();
        let mut unbound = BipolarVector::ones(d);
        let mut weights = vec![0.0f64; m];
        let mut sums = vec![0.0f64; d];
        let mut sparse = vec![0.0f64; m];
        let mut composed = BipolarVector::ones(d);

        let mut detector = CycleDetector::new();
        let mut times = PhaseTimes::default();
        let mut outcome = FactorizationOutcome {
            solved: false,
            iterations: 0,
            solved_at: None,
            converged: false,
            decoded: vec![0; f],
            cycle: None,
            revisits: 0,
            degenerate_events: 0,
            correct_at: Vec::new(),
            cosines: Vec::new(),
            times,
        };

        for t in 1..=self.config.max_iters {
            outcome.iterations = t;
            for fi in 0..f {
                let t0 = Instant::now();
                // Sequential order reads the freshest estimates (already
                // written into `next` for factors < fi), synchronous order
                // reads only the previous iteration's state.
                let others: Vec<&BipolarVector> = (0..f)
                    .filter(|&j| j != fi)
                    .map(|j| match self.config.update_order {
                        UpdateOrder::Sequential => {
                            if j < fi {
                                &next[j]
                            } else {
                                &estimates[j]
                            }
                        }
                        UpdateOrder::Synchronous => &estimates[j],
                    })
                    .collect();
                kernels.unbind_into(query, &others, &mut unbound);
                times.unbind += t0.elapsed();

                let t1 = Instant::now();
                kernels.similarity_weights_into(fi, &unbound, &mut weights);
                times.similarity += t1.elapsed();

                let all_zero = weights.iter().all(|&w| w == 0.0);
                if all_zero {
                    outcome.degenerate_events += 1;
                    match self.config.degenerate {
                        DegeneratePolicy::KeepPrevious => next[fi].copy_from(&estimates[fi]),
                        DegeneratePolicy::RandomCandidate => {
                            let r = rng.gen_range(0..m);
                            next[fi].copy_from(codebooks[fi].vector(r));
                        }
                        DegeneratePolicy::RandomSparse { k } => {
                            sparse.fill(0.0);
                            for _ in 0..k.clamp(1, m) {
                                sparse[rng.gen_range(0..m)] = 1.0;
                            }
                            let t2 = Instant::now();
                            kernels.project_into(fi, &sparse, &mut sums);
                            next[fi].assign_signs_of_reals(&sums);
                            times.projection += t2.elapsed();
                        }
                    }
                    continue;
                }

                let t2 = Instant::now();
                kernels.project_into(fi, &weights, &mut sums);
                next[fi].assign_signs_of_reals(&sums);
                times.projection += t2.elapsed();
            }
            kernels.end_iteration();

            let t3 = Instant::now();
            let fixed_point = next == estimates;
            std::mem::swap(&mut estimates, &mut next);

            // Decode current estimates through a clean cleanup memory,
            // by absolute similarity (sign-flip symmetry; see
            // `Codebook::cleanup_abs`).
            for (fi, cb) in codebooks.iter().enumerate() {
                outcome.decoded[fi] = cb.cleanup_abs(&estimates[fi]).index;
            }
            let correct = match truth {
                Some(tr) => outcome.decoded == tr,
                None => {
                    composed.copy_from(codebooks[0].vector(outcome.decoded[0]));
                    for (cb, &i) in codebooks.iter().zip(&outcome.decoded).skip(1) {
                        composed.bind_assign(cb.vector(i));
                    }
                    composed.cosine(query).abs() >= self.config.accept_threshold
                }
            };
            if self.config.record_trajectory {
                outcome.correct_at.push(correct);
                if let Some(tr) = truth {
                    outcome.cosines.push(
                        (0..f)
                            .map(|fi| estimates[fi].cosine(codebooks[fi].vector(tr[fi])))
                            .collect(),
                    );
                }
            }
            if correct {
                outcome.solved = true;
                outcome.solved_at = Some(t);
                times.other += t3.elapsed();
                break;
            }

            match self.config.cycle_action {
                CycleAction::Ignore => {}
                CycleAction::Abort | CycleAction::Record => {
                    if let Some(info) = detector.observe(&estimates, t) {
                        if outcome.cycle.is_none() {
                            outcome.cycle = Some(info);
                        }
                        if self.config.cycle_action == CycleAction::Abort {
                            times.other += t3.elapsed();
                            break;
                        }
                    }
                }
            }

            if fixed_point && self.config.stop_on_fixed_point {
                outcome.converged = true;
                times.other += t3.elapsed();
                break;
            }
            times.other += t3.elapsed();
        }

        outcome.revisits = detector.revisits();
        if outcome.solved {
            outcome.converged = true;
        }
        outcome.times = times;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_times_fractions() {
        let t = PhaseTimes {
            unbind: Duration::from_millis(10),
            similarity: Duration::from_millis(40),
            projection: Duration::from_millis(40),
            other: Duration::from_millis(10),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        assert!((t.mvm_fraction() - 0.8).abs() < 1e-9);
        assert_eq!(PhaseTimes::default().mvm_fraction(), 0.0);
    }

    #[test]
    fn config_presets_differ() {
        let b = LoopConfig::baseline(100);
        let s = LoopConfig::stochastic(100);
        assert_eq!(b.cycle_action, CycleAction::Abort);
        assert_eq!(s.cycle_action, CycleAction::Record);
        assert!(b.stop_on_fixed_point);
        assert!(!s.stop_on_fixed_point);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iters_rejected() {
        let _ = ResonatorLoop::new(LoopConfig::baseline(0));
    }
}
