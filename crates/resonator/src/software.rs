//! Pure-software kernel implementations and the two reference engines.
//!
//! [`BaselineResonator`] is the deterministic resonator network of Frady et
//! al. (the paper's "Baseline" column in Table II). [`StochasticResonator`]
//! is the algorithm-level model of H3DFact's stochastic factorizer:
//! Gaussian similarity noise (standing in for memristive readout noise)
//! plus the noise-referenced 4-bit quantized activation. The full
//! device-accurate engine lives in `h3dfact-core`; this one exists so that
//! algorithm studies and capacity sweeps run fast.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::engine::{
    FactorizationOutcome, Factorizer, LoopConfig, ResonatorKernels, ResonatorLoop,
};
use crate::lockstep::{BatchedResonator, LockstepProblem};
use hdc::rng::{derive_seed, rng_from_seed};
use hdc::stats::normal;
use hdc::{BipolarVector, Codebook, ProblemSpec};

/// Stream namespace separating the stochastic engine's loop seed from its
/// kernel seed (the historical constant of
/// [`StochasticResonator::factorize_query`], shared with the lockstep
/// path so both derive identical streams).
const STOCHASTIC_LOOP_NS: u64 = 0xD15C;

/// Software kernels over borrowed codebooks.
#[derive(Debug)]
pub struct SoftwareKernels<'a> {
    codebooks: &'a [Codebook],
    /// Gaussian sigma added to each similarity element, in dot-product
    /// units (≈ `cell_sigma · sqrt(D)` to mimic a crossbar column).
    noise_sigma: f64,
    /// Clip negative similarities to zero before the activation — the
    /// standard non-negative readout that removes the resonator's
    /// sign-flip attractors (an even number of negated estimates composes
    /// to the same product vector but decodes wrong). Physically this is
    /// the `VTGT`-referenced sense path passing only positive differential
    /// currents.
    rectify: bool,
    activation: Activation,
    /// Deterministic multiplicative gain on every similarity (fraction of
    /// devices *not* stuck at HRS, times any write-window compression);
    /// `1.0` is the ideal array and is skipped exactly.
    survival: f64,
    rng: StdRng,
}

impl<'a> SoftwareKernels<'a> {
    /// Creates kernels over `codebooks` with the given stochasticity model.
    ///
    /// # Panics
    ///
    /// Panics if `codebooks` is empty or shapes disagree.
    pub fn new(
        codebooks: &'a [Codebook],
        noise_sigma: f64,
        rectify: bool,
        activation: Activation,
        seed: u64,
    ) -> Self {
        assert!(!codebooks.is_empty(), "need at least one codebook");
        let dim = codebooks[0].dim();
        let m = codebooks[0].len();
        assert!(
            codebooks.iter().all(|c| c.dim() == dim && c.len() == m),
            "codebooks must share shape"
        );
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        Self {
            codebooks,
            noise_sigma,
            rectify,
            activation,
            survival: 1.0,
            rng: rng_from_seed(seed),
        }
    }

    /// Applies a deterministic similarity gain modeling stuck-at-HRS
    /// devices and write-window compression (`survival = (1 − stuck_at) ·
    /// write_gain`, as in the crossbar column model). `1.0` restores the
    /// exact ideal path bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics unless `survival` is in `(0, 1]`.
    pub fn with_survival(mut self, survival: f64) -> Self {
        assert!(
            survival > 0.0 && survival <= 1.0,
            "survival must be in (0, 1]"
        );
        self.survival = survival;
        self
    }
}

impl ResonatorKernels for SoftwareKernels<'_> {
    fn dim(&self) -> usize {
        self.codebooks[0].dim()
    }

    fn factors(&self) -> usize {
        self.codebooks.len()
    }

    fn codebook_size(&self) -> usize {
        self.codebooks[0].len()
    }

    fn unbind_into(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    ) {
        out.copy_from(product);
        for o in others {
            out.bind_assign(o);
        }
    }

    fn similarity_weights_into(&mut self, factor: usize, query: &BipolarVector, out: &mut [f64]) {
        self.codebooks[factor].similarities_into(query, out);
        if self.survival != 1.0 {
            for w in out.iter_mut() {
                *w *= self.survival;
            }
        }
        if self.noise_sigma > 0.0 {
            for w in out.iter_mut() {
                *w += normal(0.0, self.noise_sigma, &mut self.rng);
            }
        }
        if self.rectify {
            for w in out.iter_mut() {
                if *w < 0.0 {
                    *w = 0.0;
                }
            }
        }
        self.activation.apply(out);
    }

    fn project_into(&mut self, factor: usize, weights: &[f64], out: &mut [f64]) {
        self.codebooks[factor]
            .packed()
            .weighted_sums_into(weights, out);
    }
}

/// Compact record of a software engine's most recent run, mirroring the
/// role `h3dfact_core::RunStats` plays for the hardware engines (software
/// kernels have no energy/latency model, so only loop-level facts exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareRunSummary {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the run solved the problem.
    pub solved: bool,
    /// Degenerate (all-zero activation) events.
    pub degenerate_events: usize,
    /// State revisits observed by the cycle detector.
    pub revisits: usize,
}

impl SoftwareRunSummary {
    /// The single definition of how a run outcome condenses into the
    /// summary — shared by the sequential engines' `last_run_summary`
    /// bookkeeping and the facade's lockstep per-item reports, so the
    /// two can never diverge.
    pub fn of(outcome: &FactorizationOutcome) -> Self {
        Self {
            iterations: outcome.iterations,
            solved: outcome.solved,
            degenerate_events: outcome.degenerate_events,
            revisits: outcome.revisits,
        }
    }
}

/// The deterministic baseline resonator network ([9] in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineResonator {
    config: LoopConfig,
    seed: u64,
    runs: u64,
    last_run: Option<SoftwareRunSummary>,
}

impl BaselineResonator {
    /// Creates the baseline with an iteration budget.
    pub fn new(max_iters: usize, seed: u64) -> Self {
        Self::with_config(LoopConfig::baseline(max_iters), seed)
    }

    /// Overrides the loop configuration (e.g. to record trajectories).
    pub fn with_config(config: LoopConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            runs: 0,
            last_run: None,
        }
    }

    /// The loop configuration in use.
    pub fn config(&self) -> LoopConfig {
        self.config
    }

    /// Summary of the most recent run.
    pub fn last_run_summary(&self) -> Option<SoftwareRunSummary> {
        self.last_run
    }

    /// How many `factorize*` calls this engine has issued; per-run seeds
    /// derive from `(engine seed, cursor)`.
    pub fn run_cursor(&self) -> u64 {
        self.runs
    }

    /// Repositions the run cursor so the next `factorize*` call draws the
    /// seed stream of run `cursor` (deterministic parallel executors give
    /// each item the cursor it would have had sequentially).
    pub fn set_run_cursor(&mut self, cursor: u64) {
        self.runs = cursor;
    }

    /// Solves `queries` as one lockstep batch
    /// ([`crate::lockstep::BatchedResonator`]): item `i` runs at cursor
    /// `run_cursor() + i`, the cursor advances past the batch, and every
    /// outcome is **bit-identical** (up to wall-clock phase times) to the
    /// equivalent sequential [`Factorizer::factorize_query`] call stream.
    pub fn factorize_lockstep(
        &mut self,
        codebooks: &[Codebook],
        queries: &[(&BipolarVector, Option<&[usize]>)],
    ) -> Vec<FactorizationOutcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        let problems: Vec<LockstepProblem<'_>> = queries
            .iter()
            .enumerate()
            .map(|(i, &(query, truth))| {
                let run_seed = derive_seed(self.seed, self.runs + i as u64);
                LockstepProblem {
                    query,
                    truth,
                    kernel_seed: run_seed,
                    loop_seed: run_seed,
                }
            })
            .collect();
        self.runs += queries.len() as u64;
        let outcomes = BatchedResonator::new(self.config, 0.0, false, Activation::Identity)
            .run(codebooks, &problems);
        self.last_run = outcomes.last().map(SoftwareRunSummary::of);
        outcomes
    }
}

impl Factorizer for BaselineResonator {
    fn factorize_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome {
        let run_seed = derive_seed(self.seed, self.runs);
        self.runs += 1;
        // Identity activation, no rectification: the faithful Frady et al.
        // baseline. Sign-flip attractors are handled at decode time.
        let mut kernels =
            SoftwareKernels::new(codebooks, 0.0, false, Activation::Identity, run_seed);
        let outcome =
            ResonatorLoop::new(self.config).run(&mut kernels, codebooks, query, truth, run_seed);
        self.last_run = Some(SoftwareRunSummary::of(&outcome));
        outcome
    }
}

/// Algorithm-level model of H3DFact's stochastic factorizer: similarity
/// noise + noise-referenced low-precision quantization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticResonator {
    config: LoopConfig,
    /// Per-element similarity noise sigma in dot units.
    noise_sigma: f64,
    activation: Activation,
    seed: u64,
    runs: u64,
    last_run: Option<SoftwareRunSummary>,
}

impl StochasticResonator {
    /// Relative per-cell readout sigma matching `cim::NoiseSpec::chip_40nm`
    /// aggregates (kept numerically in sync by a cross-crate test in the
    /// workspace integration suite).
    pub const CHIP_CELL_SIGMA: f64 = 0.139;

    /// LSB size in noise-floor sigmas used by the paper-default activation.
    pub const DEFAULT_LSB_SIGMAS: f64 = 3.0;

    /// The paper-default stochastic engine for problems of shape `spec`:
    /// chip-calibrated similarity noise and 4-bit noise-referenced ADC
    /// activation.
    pub fn paper_default(spec: ProblemSpec, max_iters: usize, seed: u64) -> Self {
        Self::with_cell_noise(spec, max_iters, Self::CHIP_CELL_SIGMA, 4, seed)
    }

    /// Engine with an explicit **relative per-cell** readout sigma — the
    /// workspace-wide analog noise convention (`NoiseSpec::sigma_total()`
    /// units): the engine itself scales by `sqrt(D)` to the per-dot-product
    /// sigma a `D`-row crossbar column exhibits, exactly as
    /// `PcmEngine::with_cell_sigma` and the device-accurate crossbar models
    /// do. Callers therefore pass the same number to every analog backend
    /// and get the same effective physics.
    pub fn with_cell_noise(
        spec: ProblemSpec,
        max_iters: usize,
        cell_sigma: f64,
        adc_bits: u8,
        seed: u64,
    ) -> Self {
        assert!(cell_sigma >= 0.0, "cell sigma must be non-negative");
        Self::with_parts(
            LoopConfig::stochastic(max_iters),
            cell_sigma * (spec.dim as f64).sqrt(),
            Activation::noise_referenced(adc_bits, spec.dim, Self::DEFAULT_LSB_SIGMAS),
            seed,
        )
    }

    /// Fully explicit constructor.
    pub fn with_parts(
        config: LoopConfig,
        noise_sigma: f64,
        activation: Activation,
        seed: u64,
    ) -> Self {
        Self {
            config,
            noise_sigma,
            activation,
            seed,
            runs: 0,
            last_run: None,
        }
    }

    /// The loop configuration in use.
    pub fn config(&self) -> LoopConfig {
        self.config
    }

    /// Summary of the most recent run.
    pub fn last_run_summary(&self) -> Option<SoftwareRunSummary> {
        self.last_run
    }

    /// The similarity-noise sigma (dot units).
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// The activation in use.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// How many `factorize*` calls this engine has issued; per-run seeds
    /// derive from `(engine seed, cursor)`.
    pub fn run_cursor(&self) -> u64 {
        self.runs
    }

    /// Repositions the run cursor so the next `factorize*` call draws the
    /// seed stream of run `cursor` (deterministic parallel executors give
    /// each item the cursor it would have had sequentially).
    pub fn set_run_cursor(&mut self, cursor: u64) {
        self.runs = cursor;
    }

    /// Solves `queries` as one lockstep batch
    /// ([`crate::lockstep::BatchedResonator`]): item `i` runs at cursor
    /// `run_cursor() + i` with exactly the kernel-noise and loop seed
    /// streams of the equivalent sequential
    /// [`Factorizer::factorize_query`] calls, so every outcome is
    /// **bit-identical** (up to wall-clock phase times) to the sequential
    /// call stream.
    pub fn factorize_lockstep(
        &mut self,
        codebooks: &[Codebook],
        queries: &[(&BipolarVector, Option<&[usize]>)],
    ) -> Vec<FactorizationOutcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        let problems: Vec<LockstepProblem<'_>> = queries
            .iter()
            .enumerate()
            .map(|(i, &(query, truth))| {
                let run_seed = derive_seed(self.seed, self.runs + i as u64);
                LockstepProblem {
                    query,
                    truth,
                    kernel_seed: run_seed,
                    loop_seed: derive_seed(run_seed, STOCHASTIC_LOOP_NS),
                }
            })
            .collect();
        self.runs += queries.len() as u64;
        let outcomes = BatchedResonator::new(self.config, self.noise_sigma, true, self.activation)
            .run(codebooks, &problems);
        self.last_run = outcomes.last().map(SoftwareRunSummary::of);
        outcomes
    }
}

impl Factorizer for StochasticResonator {
    fn factorize_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome {
        let run_seed = derive_seed(self.seed, self.runs);
        self.runs += 1;
        let mut kernels =
            SoftwareKernels::new(codebooks, self.noise_sigma, true, self.activation, run_seed);
        let outcome = ResonatorLoop::new(self.config).run(
            &mut kernels,
            codebooks,
            query,
            truth,
            derive_seed(run_seed, STOCHASTIC_LOOP_NS),
        );
        self.last_run = Some(SoftwareRunSummary::of(&outcome));
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;
    use hdc::FactorizationProblem;

    fn problem(f: usize, m: usize, d: usize, seed: u64) -> FactorizationProblem {
        FactorizationProblem::random(ProblemSpec::new(f, m, d), &mut rng_from_seed(seed))
    }

    #[test]
    fn baseline_solves_small_problem() {
        let p = problem(3, 8, 512, 110);
        let mut eng = BaselineResonator::new(100, 1);
        let out = eng.factorize(&p);
        assert!(out.solved, "baseline failed a trivially small problem");
        assert!(out.solved_at.unwrap() <= 20);
        assert_eq!(out.decoded, p.true_indices());
    }

    #[test]
    fn baseline_is_deterministic() {
        let p = problem(3, 16, 512, 111);
        let out1 = BaselineResonator::new(100, 7).factorize(&p);
        let out2 = BaselineResonator::new(100, 7).factorize(&p);
        assert_eq!(out1.solved, out2.solved);
        assert_eq!(out1.iterations, out2.iterations);
        assert_eq!(out1.decoded, out2.decoded);
    }

    #[test]
    fn stochastic_solves_small_problem() {
        let p = problem(3, 8, 512, 112);
        let mut eng = StochasticResonator::paper_default(p.spec(), 200, 2);
        let out = eng.factorize(&p);
        assert!(out.solved, "stochastic failed a trivially small problem");
    }

    #[test]
    fn stochastic_runs_differ_across_calls() {
        // Different internal run seeds → generally different trajectories.
        let p = problem(3, 32, 512, 113);
        let mut eng = StochasticResonator::paper_default(p.spec(), 300, 3);
        let a = eng.factorize(&p);
        let b = eng.factorize(&p);
        // Both should solve, but usually at different iteration counts; we
        // only assert the engine does not get weaker across calls.
        assert!(a.solved && b.solved);
    }

    #[test]
    fn factorize_query_accepts_noisy_input() {
        let p = problem(3, 8, 1024, 114);
        let mut rng = rng_from_seed(115);
        let noisy = p.noisy_product(0.05, &mut rng);
        let mut eng = StochasticResonator::paper_default(p.spec(), 300, 4);
        let out = eng.factorize_query(p.codebooks(), &noisy, Some(p.true_indices()));
        assert!(out.solved, "5 % flip noise should be tolerable");
    }

    #[test]
    fn solved_without_truth_uses_recomposition() {
        let p = problem(2, 8, 512, 116);
        let mut eng = BaselineResonator::new(100, 5);
        let out = eng.factorize_query(p.codebooks(), p.product(), None);
        assert!(out.solved);
        assert_eq!(out.decoded, p.true_indices());
    }

    #[test]
    fn trajectory_recording_captures_progress() {
        let p = problem(3, 8, 512, 117);
        let mut cfg = LoopConfig::baseline(100);
        cfg.record_trajectory = true;
        let mut eng = BaselineResonator::with_config(cfg, 6);
        let out = eng.factorize(&p);
        assert!(out.solved);
        assert_eq!(out.correct_at.len(), out.iterations);
        assert_eq!(out.cosines.len(), out.iterations);
        assert!(*out.correct_at.last().unwrap());
        // At solve time each estimate's strongest codebook alignment is
        // the true factor (up to the global sign symmetry); the magnitude
        // only needs to clear the random-similarity floor ~1/sqrt(D).
        assert!(out.cosines.last().unwrap().iter().all(|&c| c.abs() > 0.1));
    }

    #[test]
    fn baseline_large_problem_hits_cycle_or_fails() {
        // Far beyond baseline capacity at this dimension: expect failure,
        // and with Abort the run terminates early via cycle detection.
        let p = problem(4, 64, 256, 118);
        let mut eng = BaselineResonator::new(500, 8);
        let out = eng.factorize(&p);
        assert!(!out.solved);
        // Deterministic failures normally end in a detected cycle or a
        // wrong fixed point well before the budget; a long transient that
        // exhausts the budget is rare but possible, so only the failure
        // itself is asserted strictly.
        if out.cycle.is_some() || out.converged {
            assert!(out.iterations < 500, "early abort expected");
        }
    }
}
