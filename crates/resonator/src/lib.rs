//! Resonator-network factorization of holographic product vectors.
//!
//! The resonator network (Frady, Kent, Olshausen & Sommer, *Neural
//! Computation* 2020) decomposes a product hypervector
//! `s = x₁ ⊙ x₂ ⊙ … ⊙ x_F` back into one item per codebook by searching
//! *in superposition*: every factor estimate is iteratively refined by
//! unbinding the other estimates, measuring similarity against its
//! codebook, and projecting back through the codebook:
//!
//! ```text
//! x̂_f(t+1) = sign( X_f · g( X_fᵀ · (s ⊙ ⊙_{j≠f} x̂_j(t)) ) )
//! ```
//!
//! The deterministic iteration falls into **limit cycles** as the problem
//! grows, collapsing accuracy (paper Fig. 1c). H3DFact's contribution is to
//! let the *hardware* supply the cure: memristive read noise plus coarse
//! (4-bit) ADC quantization turn `g` into a sparse stochastic activation
//! that explores a far larger solution space (paper Sec. III-C, Table II).
//!
//! This crate implements the shared iteration ([`engine::ResonatorLoop`])
//! over pluggable [`engine::ResonatorKernels`], a pure-software kernel set
//! ([`software::SoftwareKernels`]) used for the baseline and for
//! algorithm-level studies, cycle detection, and the capacity-sweep
//! machinery behind the paper's Table II.
//!
//! # Example
//!
//! ```
//! use hdc::{FactorizationProblem, ProblemSpec, rng::rng_from_seed};
//! use resonator::{BaselineResonator, StochasticResonator, engine::Factorizer};
//!
//! let spec = ProblemSpec::new(3, 8, 512);
//! let mut rng = rng_from_seed(11);
//! let problem = FactorizationProblem::random(spec, &mut rng);
//!
//! let mut baseline = BaselineResonator::new(100, 1);
//! assert!(baseline.factorize(&problem).solved);
//!
//! let mut stochastic = StochasticResonator::paper_default(spec, 100, 1);
//! assert!(stochastic.factorize(&problem).solved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod batch;
pub mod capacity;
pub mod convergence;
pub mod engine;
pub mod lockstep;
pub mod metrics;
pub mod software;
pub mod superposed;

pub use activation::Activation;
pub use batch::{run_batch, BatchItem, BatchOutcome};
pub use capacity::{measure_cell, CapacityCell, SweepConfig};
pub use convergence::{CycleDetector, CycleInfo};
pub use engine::{
    DegeneratePolicy, FactorizationOutcome, Factorizer, LoopConfig, ResonatorKernels, ResonatorLoop,
};
pub use lockstep::{BatchedResonator, LockstepProblem};
pub use software::{BaselineResonator, SoftwareKernels, SoftwareRunSummary, StochasticResonator};
pub use superposed::{explain_away, ExplainAwayConfig, SuperposedOutcome};
