//! Factorizing *superpositions* of products: the explain-away decoder.
//!
//! A multi-object scene encodes as the bundle of per-object product
//! vectors, `s = [ p₁ + p₂ + … + p_K ]` (paper Sec. II-A, operation 2).
//! A resonator factors one product at a time, so superposed inputs are
//! handled by sequential *explaining away* ([15] uses the same loop):
//! factorize the dominant object, re-compose its product, subtract it
//! from the running residue (element-wise, in the bipolar domain:
//! flip the residue elements the explained product accounts for), and
//! repeat. This module implements that loop over any [`Factorizer`].

use serde::{Deserialize, Serialize};

use crate::engine::Factorizer;
use hdc::{BipolarVector, Codebook};

/// Result of decoding a superposed input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperposedOutcome {
    /// Decoded factor-index tuples, one per extracted object, in
    /// extraction order.
    pub objects: Vec<Vec<usize>>,
    /// Mean-square energy of the residue accumulator after all
    /// extractions, relative to the unit-energy input (0 = fully
    /// explained; a K-object majority bundle retains ≈`1 − Σc²` from
    /// unexplainable tie positions).
    pub residue_energy: f64,
    /// Total factorizer iterations spent.
    pub iterations: usize,
}

impl SuperposedOutcome {
    /// True if `truth` (a set of factor tuples, order-free) was exactly
    /// recovered.
    pub fn matches(&self, truth: &[Vec<usize>]) -> bool {
        if self.objects.len() != truth.len() {
            return false;
        }
        let mut remaining: Vec<&Vec<usize>> = truth.iter().collect();
        for obj in &self.objects {
            match remaining.iter().position(|t| *t == obj) {
                Some(i) => {
                    remaining.remove(i);
                }
                None => return false,
            }
        }
        true
    }
}

/// Explain-away decoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplainAwayConfig {
    /// Maximum objects to extract.
    pub max_objects: usize,
    /// Stop when the decoded product's cosine with the residue falls below
    /// this (nothing left to explain).
    pub min_match_cosine: f64,
    /// Consecutive unproductive attempts (duplicates or zero-coefficient
    /// mixtures) tolerated before concluding the residue is exhausted.
    pub patience: usize,
    /// Decoder-side dither amplitude (fraction of the residue RMS) added
    /// to the query on retries — shifts the attractor basin so repeated
    /// attempts do not re-land on the same mixture.
    pub dither: f64,
    /// Seed for the decoder-side dither.
    pub dither_seed: u64,
    /// Exclude extracted items from subsequent searches. A bundle's
    /// elements where two objects agree support *both*, so without
    /// exclusion the search keeps re-finding extracted objects and their
    /// mixtures. Valid when objects differ in every attribute (the
    /// multi-object RAVEN regime); disable for overlapping objects.
    pub exclude_extracted: bool,
}

impl Default for ExplainAwayConfig {
    fn default() -> Self {
        Self {
            max_objects: 4,
            min_match_cosine: 0.15,
            patience: 4,
            dither: 0.3,
            dither_seed: 0xD17,
            exclude_extracted: true,
        }
    }
}

/// Decodes a superposition of up to `cfg.max_objects` products by
/// matching pursuit: factorize the residue, *fit* the decoded product's
/// coefficient `c = ⟨residue, product⟩ / D`, and peel `c · product` off.
/// Fitting (rather than unit subtraction) matters: a K-object majority
/// bundle carries each product with coefficient ≈ `1/√K`-ish, and
/// over-subtracting leaves an anti-correlated ghost that the
/// absolute-similarity decoder would re-detect.
///
/// # Panics
///
/// Panics if inputs are inconsistent.
pub fn explain_away(
    engine: &mut dyn Factorizer,
    codebooks: &[Codebook],
    input: &BipolarVector,
    cfg: &ExplainAwayConfig,
) -> SuperposedOutcome {
    assert!(cfg.max_objects > 0, "need at least one object");
    let dim = input.dim();
    let mut residue: Vec<f64> = (0..dim).map(|i| input.sign(i) as f64).collect();
    let mut objects = Vec::new();
    let mut iterations = 0;

    // A residue holding several equally-weighted objects has *mixture*
    // attractors (factor f from one object, factor g from another) besides
    // the pure ones; mixtures fit with c ≈ 0 and must be retried, with a
    // little decoder-side dither to move the basin. A patience counter
    // decides when the residue is genuinely exhausted.
    let mut dither_rng = hdc::rng::rng_from_seed(cfg.dither_seed);
    let max_attempts = 6 * cfg.max_objects;
    let mut stale = 0usize;
    // Per-factor sets of already-extracted item indices (for exclusion).
    let mut banned: Vec<Vec<usize>> = vec![Vec::new(); codebooks.len()];
    // Reused across attempts: the (possibly dithered) query accumulator,
    // its sign pattern, and the re-composed product.
    let mut dithered = vec![0.0f64; dim];
    let mut query = BipolarVector::ones(dim);
    let mut product = BipolarVector::ones(dim);
    for attempt in 0..max_attempts {
        if objects.len() >= cfg.max_objects || stale >= cfg.patience {
            break;
        }
        if attempt == 0 || cfg.dither == 0.0 {
            query.assign_signs_of_reals(&residue);
        } else {
            let rms = (residue.iter().map(|r| r * r).sum::<f64>() / dim as f64)
                .sqrt()
                .max(1e-9);
            for (d, &r) in dithered.iter_mut().zip(&residue) {
                *d = r + hdc::stats::normal(0.0, cfg.dither * rms, &mut dither_rng);
            }
            query.assign_signs_of_reals(&dithered);
        }

        // Optionally search reduced codebooks excluding extracted items.
        let excluding = cfg.exclude_extracted && banned.iter().any(|b| !b.is_empty());
        let decoded: Vec<usize> = if excluding {
            let mut keep_maps: Vec<Vec<usize>> = Vec::with_capacity(codebooks.len());
            let reduced: Vec<Codebook> = codebooks
                .iter()
                .zip(&banned)
                .map(|(cb, b)| {
                    let keep: Vec<usize> = (0..cb.len()).filter(|i| !b.contains(i)).collect();
                    let vectors = keep.iter().map(|&i| cb.vector(i).clone()).collect();
                    keep_maps.push(keep);
                    Codebook::from_vectors(vectors)
                })
                .collect();
            let out = engine.factorize_query(&reduced, &query, None);
            iterations += out.iterations;
            out.decoded
                .iter()
                .zip(&keep_maps)
                .map(|(&i, map)| map[i])
                .collect()
        } else {
            let out = engine.factorize_query(codebooks, &query, None);
            iterations += out.iterations;
            out.decoded
        };
        let out_decoded = decoded;
        product.copy_from(codebooks[0].vector(out_decoded[0]));
        for (cb, &i) in codebooks.iter().zip(&out_decoded).skip(1) {
            product.bind_assign(cb.vector(i));
        }
        // Fit against the *residue accumulator*, not its sign pattern.
        let c = residue
            .iter()
            .enumerate()
            .map(|(i, r)| r * product.sign(i) as f64)
            .sum::<f64>()
            / dim as f64;
        if c.abs() < cfg.min_match_cosine || objects.contains(&out_decoded) {
            stale += 1;
            continue;
        }
        if c > 0.0 {
            for (f, &i) in out_decoded.iter().enumerate() {
                banned[f].push(i);
            }
            objects.push(out_decoded.clone());
            stale = 0;
        }
        for (i, r) in residue.iter_mut().enumerate() {
            *r -= c * product.sign(i) as f64;
        }
    }

    let residue_energy = residue.iter().map(|r| r * r).sum::<f64>() / dim as f64;
    SuperposedOutcome {
        residue_energy,
        objects,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::StochasticResonator;
    use hdc::rng::rng_from_seed;
    use hdc::ProblemSpec;

    fn setup(k: usize, seed: u64) -> (Vec<Codebook>, Vec<Vec<usize>>, BipolarVector, ProblemSpec) {
        let spec = ProblemSpec::new(3, 8, 2048);
        let mut rng = rng_from_seed(seed);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let mut truth: Vec<Vec<usize>> = Vec::new();
        let mut products = Vec::new();
        for _ in 0..k {
            // Scene-like objects differ in every attribute; near-duplicate
            // objects (sharing F−1 factors) compose highly correlated
            // products whose bundle is genuinely ambiguous, which is not
            // what these tests probe.
            let idx: Vec<usize> = loop {
                let candidate: Vec<usize> = (0..spec.factors)
                    .map(|_| rand::Rng::gen_range(&mut rng, 0..spec.codebook_size))
                    .collect();
                let distinct = truth
                    .iter()
                    .all(|prev: &Vec<usize>| prev.iter().zip(&candidate).all(|(a, b)| a != b));
                if distinct {
                    break candidate;
                }
            };
            let p = hdc::bind_all(
                &idx.iter()
                    .zip(&books)
                    .map(|(&i, cb)| cb.vector(i).clone())
                    .collect::<Vec<_>>(),
            );
            truth.push(idx);
            products.push(p);
        }
        let bundle = hdc::bundle(&products, hdc::TieBreak::Parity);
        (books, truth, bundle, spec)
    }

    #[test]
    fn single_object_is_plain_factorization() {
        let (books, truth, bundle, spec) = setup(1, 900);
        let mut engine = StochasticResonator::paper_default(spec, 1_000, 1);
        let out = explain_away(&mut engine, &books, &bundle, &ExplainAwayConfig::default());
        assert!(
            out.matches(&truth),
            "decoded {:?} vs {:?}",
            out.objects,
            truth
        );
    }

    #[test]
    fn two_objects_are_explained_away() {
        let (books, truth, bundle, spec) = setup(2, 901);
        let mut engine = StochasticResonator::paper_default(spec, 2_000, 2);
        let out = explain_away(&mut engine, &books, &bundle, &ExplainAwayConfig::default());
        assert!(
            out.matches(&truth),
            "decoded {:?} vs truth {:?}",
            out.objects,
            truth
        );
    }

    #[test]
    fn three_objects_mostly_recoverable() {
        // Bundles of three at D=2048 are noisy; require at least 2 of 3
        // recovered across the extraction loop.
        let (books, truth, bundle, spec) = setup(3, 902);
        let mut engine = StochasticResonator::paper_default(spec, 3_000, 3);
        let out = explain_away(&mut engine, &books, &bundle, &ExplainAwayConfig::default());
        let recovered = out.objects.iter().filter(|o| truth.contains(o)).count();
        assert!(
            recovered >= 2,
            "recovered only {recovered}/3: {:?}",
            out.objects
        );
    }

    #[test]
    fn outcome_matching_is_order_free() {
        let o = SuperposedOutcome {
            objects: vec![vec![1, 2, 3], vec![4, 5, 6]],
            residue_energy: 0.0,
            iterations: 10,
        };
        assert!(o.matches(&[vec![4, 5, 6], vec![1, 2, 3]]));
        assert!(!o.matches(&[vec![1, 2, 3], vec![1, 2, 3]]));
        assert!(!o.matches(&[vec![1, 2, 3]]));
    }
}
