//! Batch factorization over shared codebooks.
//!
//! H3DFact's SRAM-buffered schedule exists to make batches efficient
//! (Sec. IV-A, batch size 100): the codebooks are programmed once and a
//! stream of queries shares them. This module provides the engine-agnostic
//! batch runner used by throughput studies and the perception pipeline.

use serde::{Deserialize, Serialize};

use crate::engine::{FactorizationOutcome, Factorizer};
use crate::metrics::IterationStats;
use hdc::{BipolarVector, Codebook};

/// One batch element: a query and (optionally) its ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchItem {
    /// The product vector to factorize.
    pub query: BipolarVector,
    /// Ground-truth indices, when known.
    pub truth: Option<Vec<usize>>,
}

/// Aggregate result of a batch run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Per-item outcomes, in input order.
    pub outcomes: Vec<FactorizationOutcome>,
    /// Iteration statistics over solved items.
    pub iterations: IterationStats,
}

impl BatchOutcome {
    /// Builds the aggregate from per-item outcomes: the one definition of
    /// which iterations count as "solved work" (`solved_at`, falling back
    /// to the executed iterations), shared by every batch path.
    pub fn from_outcomes(outcomes: Vec<FactorizationOutcome>) -> Self {
        let solved_iters: Vec<usize> = outcomes
            .iter()
            .filter(|o| o.solved)
            .map(|o| o.solved_at.unwrap_or(o.iterations))
            .collect();
        Self {
            iterations: IterationStats::new(solved_iters),
            outcomes,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Fraction of items solved.
    pub fn accuracy(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.solved).count() as f64 / self.outcomes.len() as f64
    }

    /// Total iterations across all items (the batch's work measure).
    pub fn total_iterations(&self) -> usize {
        self.outcomes.iter().map(|o| o.iterations).sum()
    }
}

/// Runs every item through `engine` against the shared `codebooks`.
///
/// # Panics
///
/// Panics if `items` is empty or shapes disagree (propagated from the
/// engine).
pub fn run_batch<E: Factorizer + ?Sized>(
    engine: &mut E,
    codebooks: &[Codebook],
    items: &[BatchItem],
) -> BatchOutcome {
    assert!(!items.is_empty(), "batch must be non-empty");
    let outcomes: Vec<FactorizationOutcome> = items
        .iter()
        .map(|item| engine.factorize_query(codebooks, &item.query, item.truth.as_deref()))
        .collect();
    BatchOutcome::from_outcomes(outcomes)
}

/// Builds a batch of `n` fresh random problems over shared codebooks
/// (the standard throughput workload).
pub fn random_batch(
    codebooks: &[Codebook],
    n: usize,
    master_seed: u64,
) -> (Vec<BatchItem>, Vec<Vec<usize>>) {
    assert!(n > 0, "batch must be non-empty");
    let mut truths = Vec::with_capacity(n);
    let items = (0..n)
        .map(|i| {
            let mut rng = hdc::rng::stream_rng(master_seed, i as u64);
            let p = hdc::FactorizationProblem::with_codebooks(codebooks, &mut rng);
            truths.push(p.true_indices().to_vec());
            BatchItem {
                query: p.product().clone(),
                truth: Some(p.true_indices().to_vec()),
            }
        })
        .collect();
    (items, truths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::StochasticResonator;
    use hdc::rng::rng_from_seed;
    use hdc::ProblemSpec;

    #[test]
    fn batch_solves_and_aggregates() {
        let spec = ProblemSpec::new(3, 8, 512);
        let mut rng = rng_from_seed(800);
        let books: Vec<Codebook> = (0..3).map(|_| Codebook::random(8, 512, &mut rng)).collect();
        let (items, truths) = random_batch(&books, 10, 42);
        assert_eq!(items.len(), 10);
        assert_eq!(truths.len(), 10);
        let mut engine = StochasticResonator::paper_default(spec, 500, 1);
        let out = run_batch(&mut engine, &books, &items);
        assert_eq!(out.len(), 10);
        assert!(out.accuracy() >= 0.9, "batch accuracy {}", out.accuracy());
        assert!(out.total_iterations() > 0);
        assert!(out.iterations.count() >= 9);
    }

    #[test]
    fn batch_items_differ() {
        let mut rng = rng_from_seed(801);
        let books: Vec<Codebook> = (0..2).map(|_| Codebook::random(4, 128, &mut rng)).collect();
        let (items, _) = random_batch(&books, 8, 7);
        let distinct: std::collections::HashSet<_> =
            items.iter().map(|i| i.query.words().to_vec()).collect();
        assert!(distinct.len() > 1, "queries must vary across the batch");
    }

    #[test]
    fn empty_outcome_accuracy_is_zero() {
        let out = BatchOutcome {
            outcomes: vec![],
            iterations: IterationStats::new(vec![]),
        };
        assert_eq!(out.accuracy(), 0.0);
        assert!(out.is_empty());
    }
}
