//! Property-based tests for the resonator loop invariants.

use hdc::rng::rng_from_seed;
use hdc::{FactorizationProblem, ProblemSpec};
use proptest::prelude::*;
use resonator::engine::{Factorizer, UpdateOrder};
use resonator::{Activation, BaselineResonator, LoopConfig, StochasticResonator};

fn arb_spec() -> impl Strategy<Value = ProblemSpec> {
    (
        2usize..=4,
        2usize..=10,
        prop_oneof![Just(128usize), Just(256)],
    )
        .prop_map(|(f, m, d)| ProblemSpec::new(f, m, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn outcome_invariants_hold(spec in arb_spec(), seed in 0u64..500) {
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        let mut eng = StochasticResonator::paper_default(spec, 300, seed);
        let out = eng.factorize(&p);
        // Iterations within budget.
        prop_assert!(out.iterations >= 1 && out.iterations <= 300);
        // Decoded indices are valid.
        prop_assert!(out.decoded.iter().all(|&i| i < spec.codebook_size));
        prop_assert_eq!(out.decoded.len(), spec.factors);
        // solved ⟺ decoded equals truth (the engine was given the truth).
        prop_assert_eq!(out.solved, out.decoded == p.true_indices());
        // solved_at consistent with solved.
        match out.solved_at {
            Some(t) => {
                prop_assert!(out.solved);
                prop_assert_eq!(t, out.iterations);
            }
            None => prop_assert!(!out.solved),
        }
    }

    #[test]
    fn baseline_is_pure(spec in arb_spec(), seed in 0u64..200) {
        // Two fresh baselines on the same problem produce identical runs
        // (wall-clock phase timings excluded — they are measurements, not
        // state).
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        let a = BaselineResonator::new(200, seed).factorize(&p);
        let b = BaselineResonator::new(200, seed).factorize(&p);
        prop_assert_eq!(a.solved, b.solved);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.solved_at, b.solved_at);
        prop_assert_eq!(a.decoded, b.decoded);
        prop_assert_eq!(a.cycle, b.cycle);
        prop_assert_eq!(a.revisits, b.revisits);
        prop_assert_eq!(a.degenerate_events, b.degenerate_events);
    }

    #[test]
    fn trajectory_lengths_match(spec in arb_spec(), seed in 0u64..200) {
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        let mut cfg = LoopConfig::stochastic(100);
        cfg.record_trajectory = true;
        let mut eng = StochasticResonator::with_parts(
            cfg,
            StochasticResonator::CHIP_CELL_SIGMA * (spec.dim as f64).sqrt(),
            Activation::noise_referenced(4, spec.dim, 3.0),
            seed,
        );
        let out = eng.factorize(&p);
        prop_assert_eq!(out.correct_at.len(), out.iterations);
        prop_assert_eq!(out.cosines.len(), out.iterations);
        for cs in &out.cosines {
            prop_assert_eq!(cs.len(), spec.factors);
            prop_assert!(cs.iter().all(|c| (-1.0..=1.0).contains(c)));
        }
        // The final trace entry agrees with the outcome.
        if let Some(&last) = out.correct_at.last() {
            prop_assert_eq!(last, out.solved);
        }
    }

    #[test]
    fn update_orders_both_solve_small(seed in 0u64..100) {
        let spec = ProblemSpec::new(2, 4, 256);
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        for order in [UpdateOrder::Sequential, UpdateOrder::Synchronous] {
            let mut cfg = LoopConfig::baseline(200);
            cfg.update_order = order;
            let out = BaselineResonator::with_config(cfg, seed).factorize(&p);
            prop_assert!(out.solved, "{order:?} failed a trivial problem");
        }
    }

    #[test]
    fn noiseless_identity_never_degenerates(seed in 0u64..100) {
        // With the identity activation the weight vector is all-zero only
        // if every similarity is exactly zero — measure-zero for random
        // codebooks of odd dot-parity dimension... use D odd-multiple to
        // be safe and assert no degenerate events occur.
        let spec = ProblemSpec::new(3, 6, 129);
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        let out = BaselineResonator::new(100, seed).factorize(&p);
        prop_assert_eq!(out.degenerate_events, 0);
    }

    #[test]
    fn lockstep_batch_is_bit_identical_to_sequential_engine(
        spec in arb_spec(),
        n in 1usize..=6,
        budget in prop_oneof![Just(40usize), Just(300)],
        seed in 0u64..200,
    ) {
        // A lockstep batch must reproduce, per problem, exactly what the
        // sequential engine produces for the same run cursors — including
        // batches where easy problems retire mid-flight (the small budget
        // forces a mix of solved, cycling, and budget-exhausted slots)
        // and for both the deterministic baseline (cycle-abort,
        // fixed-point retirement) and the stochastic engine (noise
        // streams, degenerate re-draws).
        let mut rng = rng_from_seed(seed);
        let books: Vec<_> = (0..spec.factors)
            .map(|_| hdc::Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let problems: Vec<FactorizationProblem> = (0..n)
            .map(|_| FactorizationProblem::with_codebooks(&books, &mut rng))
            .collect();
        let queries: Vec<(&hdc::BipolarVector, Option<&[usize]>)> = problems
            .iter()
            .map(|p| (p.product(), Some(p.true_indices())))
            .collect();

        let strip = |mut o: resonator::FactorizationOutcome| {
            o.times = Default::default();
            o
        };

        // Baseline engine.
        let mut seq = BaselineResonator::new(budget, seed);
        let expected: Vec<_> = problems
            .iter()
            .map(|p| strip(seq.factorize_query(&books, p.product(), Some(p.true_indices()))))
            .collect();
        let mut locked = BaselineResonator::new(budget, seed);
        let got = locked.factorize_lockstep(&books, &queries);
        prop_assert_eq!(seq.run_cursor(), locked.run_cursor());
        for (i, (g, e)) in got.into_iter().zip(&expected).enumerate() {
            prop_assert_eq!(strip(g), e.clone(), "baseline problem {} diverged", i);
        }

        // Stochastic engine (per-problem noise + loop RNG streams).
        let mut seq = StochasticResonator::paper_default(spec, budget, seed);
        let expected: Vec<_> = problems
            .iter()
            .map(|p| strip(seq.factorize_query(&books, p.product(), Some(p.true_indices()))))
            .collect();
        let mut locked = StochasticResonator::paper_default(spec, budget, seed);
        let got = locked.factorize_lockstep(&books, &queries);
        prop_assert_eq!(seq.run_cursor(), locked.run_cursor());
        for (i, (g, e)) in got.into_iter().zip(&expected).enumerate() {
            prop_assert_eq!(strip(g), e.clone(), "stochastic problem {} diverged", i);
        }
    }

    #[test]
    fn lockstep_retirement_is_independent_per_slot(seed in 0u64..60) {
        // Mid-batch retirement: pair one trivially easy problem (solves
        // in a few iterations) with hard over-capacity ones that run the
        // whole budget. Retiring the easy slot must not perturb the hard
        // slots' trajectories relative to their solo runs.
        let easy_spec = ProblemSpec::new(2, 3, 256);
        let mut rng = rng_from_seed(seed);
        let books: Vec<_> = (0..easy_spec.factors)
            .map(|_| hdc::Codebook::random(easy_spec.codebook_size, easy_spec.dim, &mut rng))
            .collect();
        let problems: Vec<FactorizationProblem> = (0..4)
            .map(|_| FactorizationProblem::with_codebooks(&books, &mut rng))
            .collect();
        let queries: Vec<(&hdc::BipolarVector, Option<&[usize]>)> = problems
            .iter()
            .map(|p| (p.product(), Some(p.true_indices())))
            .collect();
        let mut seq = StochasticResonator::paper_default(easy_spec, 150, seed);
        let expected: Vec<_> = problems
            .iter()
            .map(|p| seq.factorize_query(&books, p.product(), Some(p.true_indices())))
            .collect();
        let mut locked = StochasticResonator::paper_default(easy_spec, 150, seed);
        let got = locked.factorize_lockstep(&books, &queries);
        // The batch mixes retirement times (easy shapes solve at
        // different iterations under different noise streams).
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.solved, e.solved);
            prop_assert_eq!(g.iterations, e.iterations);
            prop_assert_eq!(g.solved_at, e.solved_at);
            prop_assert_eq!(&g.decoded, &e.decoded);
            prop_assert_eq!(g.revisits, e.revisits);
            prop_assert_eq!(g.degenerate_events, e.degenerate_events);
        }
    }
}
