//! Property-based tests for the resonator loop invariants.

use hdc::rng::rng_from_seed;
use hdc::{FactorizationProblem, ProblemSpec};
use proptest::prelude::*;
use resonator::engine::{Factorizer, UpdateOrder};
use resonator::{Activation, BaselineResonator, LoopConfig, StochasticResonator};

fn arb_spec() -> impl Strategy<Value = ProblemSpec> {
    (
        2usize..=4,
        2usize..=10,
        prop_oneof![Just(128usize), Just(256)],
    )
        .prop_map(|(f, m, d)| ProblemSpec::new(f, m, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn outcome_invariants_hold(spec in arb_spec(), seed in 0u64..500) {
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        let mut eng = StochasticResonator::paper_default(spec, 300, seed);
        let out = eng.factorize(&p);
        // Iterations within budget.
        prop_assert!(out.iterations >= 1 && out.iterations <= 300);
        // Decoded indices are valid.
        prop_assert!(out.decoded.iter().all(|&i| i < spec.codebook_size));
        prop_assert_eq!(out.decoded.len(), spec.factors);
        // solved ⟺ decoded equals truth (the engine was given the truth).
        prop_assert_eq!(out.solved, out.decoded == p.true_indices());
        // solved_at consistent with solved.
        match out.solved_at {
            Some(t) => {
                prop_assert!(out.solved);
                prop_assert_eq!(t, out.iterations);
            }
            None => prop_assert!(!out.solved),
        }
    }

    #[test]
    fn baseline_is_pure(spec in arb_spec(), seed in 0u64..200) {
        // Two fresh baselines on the same problem produce identical runs
        // (wall-clock phase timings excluded — they are measurements, not
        // state).
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        let a = BaselineResonator::new(200, seed).factorize(&p);
        let b = BaselineResonator::new(200, seed).factorize(&p);
        prop_assert_eq!(a.solved, b.solved);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.solved_at, b.solved_at);
        prop_assert_eq!(a.decoded, b.decoded);
        prop_assert_eq!(a.cycle, b.cycle);
        prop_assert_eq!(a.revisits, b.revisits);
        prop_assert_eq!(a.degenerate_events, b.degenerate_events);
    }

    #[test]
    fn trajectory_lengths_match(spec in arb_spec(), seed in 0u64..200) {
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        let mut cfg = LoopConfig::stochastic(100);
        cfg.record_trajectory = true;
        let mut eng = StochasticResonator::with_parts(
            cfg,
            StochasticResonator::CHIP_CELL_SIGMA * (spec.dim as f64).sqrt(),
            Activation::noise_referenced(4, spec.dim, 3.0),
            seed,
        );
        let out = eng.factorize(&p);
        prop_assert_eq!(out.correct_at.len(), out.iterations);
        prop_assert_eq!(out.cosines.len(), out.iterations);
        for cs in &out.cosines {
            prop_assert_eq!(cs.len(), spec.factors);
            prop_assert!(cs.iter().all(|c| (-1.0..=1.0).contains(c)));
        }
        // The final trace entry agrees with the outcome.
        if let Some(&last) = out.correct_at.last() {
            prop_assert_eq!(last, out.solved);
        }
    }

    #[test]
    fn update_orders_both_solve_small(seed in 0u64..100) {
        let spec = ProblemSpec::new(2, 4, 256);
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        for order in [UpdateOrder::Sequential, UpdateOrder::Synchronous] {
            let mut cfg = LoopConfig::baseline(200);
            cfg.update_order = order;
            let out = BaselineResonator::with_config(cfg, seed).factorize(&p);
            prop_assert!(out.solved, "{order:?} failed a trivial problem");
        }
    }

    #[test]
    fn noiseless_identity_never_degenerates(seed in 0u64..100) {
        // With the identity activation the weight vector is all-zero only
        // if every similarity is exactly zero — measure-zero for random
        // codebooks of odd dot-parity dimension... use D odd-multiple to
        // be safe and assert no degenerate events occur.
        let spec = ProblemSpec::new(3, 6, 129);
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        let out = BaselineResonator::new(100, seed).factorize(&p);
        prop_assert_eq!(out.degenerate_events, 0);
    }
}
