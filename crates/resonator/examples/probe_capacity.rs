//! Capacity probe at D = 1024: where does the deterministic baseline
//! collapse, and how far does the stochastic factorizer stretch? A quick
//! developer-facing view of the Table II landscape.

use hdc::ProblemSpec;
use resonator::{measure_cell, BaselineResonator, StochasticResonator, SweepConfig};

fn main() {
    let d = 1024;
    for f in [3usize, 4] {
        for m in [16usize, 32, 64, 128] {
            let spec = ProblemSpec::new(f, m, d);
            let iters = 3000;
            let cfg = SweepConfig::parallel(24, iters, 1234, 8);
            let base = measure_cell(spec, &cfg, |s| Box::new(BaselineResonator::new(iters, s)));
            let stoch = measure_cell(spec, &cfg, |s| {
                Box::new(StochasticResonator::paper_default(spec, iters, s))
            });
            println!(
                "F={f} M={m:3}: base acc={:5.2} iters={:?} | stoch acc={:5.2} iters={:?}",
                base.accuracy(),
                base.mean_iterations().map(|x| x.round()),
                stoch.accuracy(),
                stoch.mean_iterations().map(|x| x.round()),
            );
        }
    }
}
