//! Capacity probe at the hardware-native dimension D = 256.
use hdc::ProblemSpec;
use resonator::{measure_cell, BaselineResonator, StochasticResonator, SweepConfig};

fn main() {
    let d = 256;
    for f in [3usize, 4] {
        for m in [8usize, 16, 24, 32, 48, 64] {
            let spec = ProblemSpec::new(f, m, d);
            let iters = 6000;
            let cfg = SweepConfig::parallel(24, iters, 777, 8);
            let base = measure_cell(spec, &cfg, |s| Box::new(BaselineResonator::new(iters, s)));
            let stoch = measure_cell(spec, &cfg, |s| {
                Box::new(StochasticResonator::paper_default(spec, iters, s))
            });
            println!(
                "F={f} M={m:3}: base acc={:5.2} iters={:?} | stoch acc={:5.2} iters={:?}",
                base.accuracy(),
                base.mean_iterations().map(|x| x.round()),
                stoch.accuracy(),
                stoch.mean_iterations().map(|x| x.round()),
            );
        }
    }
}
