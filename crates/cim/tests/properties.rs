//! Property-based tests for the device and circuit models.

use cim::adc::{AdcConfig, SarAdc};
use cim::crossbar::{Crossbar, Fidelity};
use cim::dac::BitSerialDac;
use cim::irdrop::IrDropModel;
use cim::noise::NoiseSpec;
use hdc::rng::rng_from_seed;
use hdc::{BipolarVector, Codebook};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adc_is_monotone(bits in 2u8..=8, fs in 1.0f64..1000.0, seed in 0u64..100) {
        let adc = SarAdc::ideal(AdcConfig { bits, full_scale: fs, offset_sigma: 0.0, gain_sigma: 0.0 });
        let mut rng = rng_from_seed(seed);
        let mut xs: Vec<f64> = (0..32).map(|_| (rng.gen::<f64>() - 0.5) * 3.0 * fs).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let codes: Vec<i32> = xs.iter().map(|&x| adc.convert_code(x)).collect();
        for w in codes.windows(2) {
            prop_assert!(w[0] <= w[1], "ADC must be monotone");
        }
    }

    #[test]
    fn adc_is_odd_symmetric(bits in 2u8..=8, fs in 1.0f64..1000.0, x in -2000.0f64..2000.0) {
        let adc = SarAdc::ideal(AdcConfig { bits, full_scale: fs, offset_sigma: 0.0, gain_sigma: 0.0 });
        prop_assert_eq!(adc.convert_code(x), -adc.convert_code(-x));
    }

    #[test]
    fn adc_error_bounded(bits in 2u8..=8, fs in 1.0f64..1000.0, frac in -1.0f64..1.0) {
        let adc = SarAdc::ideal(AdcConfig { bits, full_scale: fs, offset_sigma: 0.0, gain_sigma: 0.0 });
        let x = frac * fs;
        let err = (adc.convert(x) - x).abs();
        prop_assert!(err <= adc.config().step() / 2.0 + 1e-9);
    }

    #[test]
    fn ideal_crossbar_is_linear_in_weights(seed in 0u64..200, m in 2usize..8) {
        // mvm_weighted(w1 + w2) = mvm_weighted(w1) + mvm_weighted(w2) for a
        // noiseless array.
        let mut rng = rng_from_seed(seed);
        let book = Codebook::random(m, 128, &mut rng);
        let mut xbar = Crossbar::program(&book, NoiseSpec::ideal(), Fidelity::Column, seed);
        let w1: Vec<f64> = (0..m).map(|i| i as f64).collect();
        let w2: Vec<f64> = (0..m).map(|i| (m - i) as f64 * 0.5).collect();
        let sum: Vec<f64> = w1.iter().zip(&w2).map(|(a, b)| a + b).collect();
        let y1 = xbar.mvm_weighted(&w1);
        let y2 = xbar.mvm_weighted(&w2);
        let ys = xbar.mvm_weighted(&sum);
        for ((a, b), s) in y1.iter().zip(&y2).zip(&ys) {
            prop_assert!((a + b - s).abs() < 1e-9);
        }
    }

    #[test]
    fn ideal_crossbar_mvm_matches_dots(seed in 0u64..200, m in 2usize..8) {
        let mut rng = rng_from_seed(seed);
        let book = Codebook::random(m, 192, &mut rng);
        let mut xbar = Crossbar::program(&book, NoiseSpec::ideal(), Fidelity::Column, seed);
        let q = BipolarVector::random(192, &mut rng);
        let out = xbar.mvm_bipolar(&q);
        for (j, o) in out.iter().enumerate() {
            prop_assert_eq!(*o, book.vector(j).dot(&q) as f64);
        }
    }

    #[test]
    fn dac_roundtrip(bits in 2u8..=8, code_frac in -1.0f64..1.0) {
        let dac = BitSerialDac::new(bits);
        let code = (code_frac * dac.max_magnitude() as f64) as i32;
        let (sign, planes) = dac.bit_planes(code);
        prop_assert_eq!(dac.reconstruct(sign, &planes), code);
    }

    #[test]
    fn irdrop_gain_bounded_and_ordered(alpha in 0.0f64..1.0, rows in 2usize..512) {
        let m = IrDropModel { alpha, mitigated: false };
        let mut last = 0.0f64;
        for r in 0..rows {
            let g = m.row_gain(r, rows);
            prop_assert!(g > 0.0 && g <= 1.0 + 1e-12);
            prop_assert!(g + 1e-12 >= last, "gain must grow toward the sense amp");
            last = g;
        }
    }

    #[test]
    fn noise_sigma_total_is_quadrature(p in 0.0f64..0.5, r in 0.0f64..0.5, v in 0.0f64..0.5) {
        let n = NoiseSpec { programming_sigma: p, read_sigma: r, pvt_sigma: v, stuck_at_rate: 0.0, write_nonlinearity: 0.0 };
        let expect = (p * p + r * r + v * v).sqrt();
        prop_assert!((n.sigma_total() - expect).abs() < 1e-12);
    }
}

#[test]
fn noisy_crossbar_preserves_argmax_statistically() {
    // Over many programs/reads, the matching column wins almost always at
    // chip noise levels — the property the factorizer rests on.
    let mut rng = rng_from_seed(990);
    let book = Codebook::random(16, 256, &mut rng);
    let mut xbar = Crossbar::program(&book, NoiseSpec::chip_40nm(), Fidelity::Column, 9);
    let mut wins = 0;
    let trials = 200;
    for t in 0..trials {
        let target = t % 16;
        let out = xbar.mvm_bipolar(book.vector(target));
        let best = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        if best == target {
            wins += 1;
        }
    }
    assert!(wins >= 198, "argmax survived only {wins}/{trials}");
}
