//! Device- and circuit-level compute-in-memory (CIM) models.
//!
//! This crate models the analog/mixed-signal substrate of H3DFact
//! (DATE 2024, Sec. III): RRAM crossbar arrays executing bipolar
//! matrix-vector multiplications in-memory, their SAR-ADC readout, the
//! digital −1's-counter/adder used for bipolar accumulation, the XNOR
//! unbinding unit of the hybrid-computing scheme, SRAM buffers, power
//! gating, and — centrally — the *stochasticity* of memristive readout that
//! the paper turns from a nuisance into the mechanism that breaks resonator
//! limit cycles.
//!
//! # Fidelity levels
//!
//! Analog MVM noise can be simulated per-cell (every device carries its own
//! programmed conductance error and fresh read noise) or per-column (the
//! aggregate Gaussian the per-cell model converges to). The column model is
//! the default for large sweeps; a statistical-equivalence test in
//! `crossbar.rs` keeps the two honest.
//!
//! # Example
//!
//! ```
//! use cim::crossbar::{Crossbar, Fidelity};
//! use cim::noise::NoiseSpec;
//! use hdc::{Codebook, rng::rng_from_seed};
//!
//! let mut rng = rng_from_seed(3);
//! let book = Codebook::random(16, 256, &mut rng);
//! let mut xbar = Crossbar::program(&book, NoiseSpec::chip_40nm(), Fidelity::Column, 9);
//! let query = book.vector(5).clone();
//! let currents = xbar.mvm_bipolar(&query);
//! // The matching column dominates despite device noise.
//! let best = currents
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.total_cmp(b.1))
//!     .unwrap()
//!     .0;
//! assert_eq!(best, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adc;
pub mod counter;
pub mod crossbar;
pub mod dac;
pub mod energy;
pub mod irdrop;
pub mod noise;
pub mod power;
pub mod rram;
pub mod sram;
pub mod tech;
pub mod xnor;

pub use adc::{AdcConfig, SarAdc};
pub use crossbar::{Crossbar, Fidelity, TiledCrossbar};
pub use dac::BitSerialDac;
pub use energy::EnergyLedger;
pub use irdrop::IrDropModel;
pub use noise::NoiseSpec;
pub use power::PowerMode;
pub use rram::{RramCell, RramDeviceParams};
pub use sram::SramBuffer;
pub use tech::TechNode;
