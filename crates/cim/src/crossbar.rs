//! Analog RRAM crossbar arrays computing bipolar MVMs in-memory.
//!
//! A crossbar stores an `D × M` bipolar matrix whose columns are the item
//! vectors of one codebook. Each matrix element is a *differential pair* of
//! RRAM devices (`+1` → G⁺=LRS, G⁻=HRS; `−1` → the reverse), so a column's
//! bit-line current is proportional to the dot product between the stored
//! column and the word-line drive pattern — one MVM per read, constant time
//! in the problem size (the paper's core CIM argument, Fig. 1c).
//!
//! Two MVM directions are provided, matching the two resonator kernels:
//!
//! - [`Crossbar::mvm_bipolar`] — *similarity*: drive rows with a bipolar
//!   query, read `M` column currents (`a = Xᵀ q`).
//! - [`Crossbar::mvm_weighted`] — *projection*: drive columns with (ADC-
//!   quantized) weights, read `D` row currents (`r = X a`).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::irdrop::IrDropModel;
use crate::noise::NoiseSpec;
use crate::power::{PowerDomain, PowerMode, PowerStateError};
use crate::rram::{RramCell, RramDeviceParams, RramState};
use hdc::rng::rng_from_seed;
use hdc::stats::normal;
use hdc::{BipolarVector, Codebook, PackedCodebook};

/// How faithfully device noise is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Fidelity {
    /// Every cell carries its own persistent programming error (and
    /// stuck-at fault); read/PVT noise is aggregated per column. Exact but
    /// O(D·M) per MVM.
    Cell,
    /// All noise sources are aggregated into one Gaussian per output
    /// (variance `σ_total² · active_rows`); ideal dot products come from
    /// popcounts. The fast path for large sweeps — statistically equivalent
    /// to [`Fidelity::Cell`] (see the `column_matches_cell_statistics`
    /// test).
    #[default]
    Column,
}

/// Access counters for energy/latency roll-ups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of similarity-direction MVMs executed.
    pub mvms: u64,
    /// Number of projection-direction (weighted) MVMs executed.
    pub weighted_mvms: u64,
    /// Total word-line activations across all MVMs.
    pub row_activations: u64,
    /// Number of device programming pulses issued.
    pub programs: u64,
}

/// An RRAM crossbar programmed with one codebook.
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    /// The programmed codebook bits in the packed MVM layouts (the only
    /// copy of the matrix the column-fidelity paths read).
    packed: PackedCodebook,
    noise: NoiseSpec,
    fidelity: Fidelity,
    device: RramDeviceParams,
    /// Cell fidelity only: per-cell differential weight (±1 nominal, with
    /// programming error), row-major `rows × cols`.
    cell_weights: Option<Vec<f32>>,
    ir_drop: IrDropModel,
    domain: PowerDomain,
    stats: AccessStats,
    rng: StdRng,
}

impl Crossbar {
    /// Programs the codebook into a crossbar (columns = item vectors).
    ///
    /// `seed` drives all stochastic device behavior of this array, making
    /// every experiment reproducible.
    pub fn program(book: &Codebook, noise: NoiseSpec, fidelity: Fidelity, seed: u64) -> Self {
        let rows = book.dim();
        let cols = book.len();
        let device = RramDeviceParams::default();
        let mut rng = rng_from_seed(seed);
        let stats = AccessStats {
            // Two devices per element (differential pair).
            programs: (rows * cols * 2) as u64,
            ..AccessStats::default()
        };
        // The nonlinear G–V programming curve compresses the differential
        // window of every written pair by a deterministic gain.
        let write_gain = noise.write_gain();
        let cell_weights = match fidelity {
            Fidelity::Column => None,
            Fidelity::Cell => {
                let mut w = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for col in book.vectors() {
                        let sign = col.sign(r);
                        let (pos_state, neg_state) = if sign > 0 {
                            (RramState::Lrs, RramState::Hrs)
                        } else {
                            (RramState::Hrs, RramState::Lrs)
                        };
                        let gp = RramCell::program(pos_state, &device, &noise, &mut rng);
                        let gn = RramCell::program(neg_state, &device, &noise, &mut rng);
                        let weight =
                            write_gain * (gp.conductance() - gn.conductance()) / device.window();
                        w.push(weight as f32);
                    }
                }
                Some(w)
            }
        };
        Self {
            rows,
            cols,
            packed: book.packed().clone(),
            noise,
            fidelity,
            device,
            cell_weights,
            ir_drop: IrDropModel::ideal(),
            domain: PowerDomain::new(50e-6, 5e-6),
            stats,
            rng,
        }
    }

    /// Enables a bit-line IR-drop model on the similarity readout
    /// (the projection direction senses row-wise through matched paths and
    /// is unaffected to first order).
    pub fn with_ir_drop(mut self, model: IrDropModel) -> Self {
        self.ir_drop = model;
        self
    }

    /// The IR-drop model in effect.
    pub fn ir_drop(&self) -> &IrDropModel {
        &self.ir_drop
    }

    /// Number of word lines (the hypervector dimension `D`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines (the codebook size `M`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The noise model in effect.
    pub fn noise(&self) -> &NoiseSpec {
        &self.noise
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Device parameters of the array.
    pub fn device(&self) -> &RramDeviceParams {
        &self.device
    }

    /// Current power mode of the array's WL level-shifter domain.
    pub fn power_mode(&self) -> PowerMode {
        self.domain.mode()
    }

    /// Switches the array's power mode (tier activation control, Fig. 3).
    pub fn set_power_mode(&mut self, mode: PowerMode) {
        self.domain.set_mode(mode);
    }

    /// Similarity MVM `a = Xᵀ q`: drives the rows with the bipolar query
    /// and returns the `M` noisy column currents in dot-product units.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] if the array is not [`PowerMode::Active`]
    /// — a deactivated tier contributes no current.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.rows()`.
    pub fn try_mvm_bipolar(&mut self, query: &BipolarVector) -> Result<Vec<f64>, PowerStateError> {
        let mut out = vec![0.0f64; self.cols];
        self.try_mvm_bipolar_into(query, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Crossbar::try_mvm_bipolar`]: writes the `M` noisy
    /// column currents into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] if the array is not active.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.rows()` or `out.len() != self.cols()`.
    pub fn try_mvm_bipolar_into(
        &mut self,
        query: &BipolarVector,
        out: &mut [f64],
    ) -> Result<(), PowerStateError> {
        self.domain.ensure_active()?;
        assert_eq!(
            query.dim(),
            self.rows,
            "query dimension {} != crossbar rows {}",
            query.dim(),
            self.rows
        );
        assert_eq!(
            out.len(),
            self.cols,
            "output length {} != crossbar cols {}",
            out.len(),
            self.cols
        );
        self.stats.mvms += 1;
        self.stats.row_activations += self.rows as u64;
        match self.fidelity {
            Fidelity::Column => {
                let sigma = self.noise.column_sigma(self.rows);
                let survival = (1.0 - self.noise.stuck_at_rate) * self.noise.write_gain();
                if self.ir_drop.alpha > 0.0 {
                    let drop = &self.ir_drop;
                    for (j, o) in out.iter_mut().enumerate() {
                        *o =
                            drop.attenuated_dot_words(self.packed.row(j), query.words(), self.rows)
                                * survival;
                    }
                } else {
                    // Ideal dot products through the packed popcount MVM.
                    self.packed.similarities_into(query, out);
                    if survival != 1.0 {
                        for o in out.iter_mut() {
                            *o *= survival;
                        }
                    }
                }
                if sigma > 0.0 {
                    for o in out.iter_mut() {
                        *o += normal(0.0, sigma, &mut self.rng);
                    }
                }
            }
            Fidelity::Cell => {
                let w = self
                    .cell_weights
                    .as_ref()
                    .expect("cell weights exist in cell fidelity");
                let read_sigma = (self.noise.read_sigma.powi(2) + self.noise.pvt_sigma.powi(2))
                    .sqrt()
                    * (self.rows as f64).sqrt();
                for (c, o) in out.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for r in 0..self.rows {
                        let v = query.sign(r) as f64;
                        acc += v * w[r * self.cols + c] as f64;
                    }
                    *o = if read_sigma > 0.0 {
                        acc + normal(0.0, read_sigma, &mut self.rng)
                    } else {
                        acc
                    };
                }
            }
        }
        Ok(())
    }

    /// Panicking convenience wrapper around [`Crossbar::try_mvm_bipolar`].
    ///
    /// # Panics
    ///
    /// Panics on power-state violations or dimension mismatch.
    pub fn mvm_bipolar(&mut self, query: &BipolarVector) -> Vec<f64> {
        self.try_mvm_bipolar(query)
            .expect("crossbar must be active for MVM")
    }

    /// Projection MVM `r = X a`: drives the columns with real-valued (ADC
    /// output) weights and returns the `D` noisy row sums.
    ///
    /// Output noise per element has σ = `σ_total · ‖a‖₂` (each active column
    /// contributes weight-scaled device error).
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] if the array is not active.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.cols()`.
    pub fn try_mvm_weighted(&mut self, weights: &[f64]) -> Result<Vec<f64>, PowerStateError> {
        let mut out = vec![0.0f64; self.rows];
        self.try_mvm_weighted_into(weights, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Crossbar::try_mvm_weighted`]: writes the `D` noisy
    /// row sums into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] if the array is not active.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn try_mvm_weighted_into(
        &mut self,
        weights: &[f64],
        out: &mut [f64],
    ) -> Result<(), PowerStateError> {
        self.domain.ensure_active()?;
        assert_eq!(
            weights.len(),
            self.cols,
            "weight count {} != crossbar cols {}",
            weights.len(),
            self.cols
        );
        assert_eq!(
            out.len(),
            self.rows,
            "output length {} != crossbar rows {}",
            out.len(),
            self.rows
        );
        self.stats.weighted_mvms += 1;
        self.stats.row_activations += self.rows as u64;
        let norm: f64 = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
        let sigma = self.noise.sigma_total() * norm;
        let survival = (1.0 - self.noise.stuck_at_rate) * self.noise.write_gain();
        match self.fidelity {
            Fidelity::Column => {
                // Ideal row sums through the packed set-bit kernel, then
                // stuck-at survival and per-row aggregate noise.
                self.packed.weighted_sums_into(weights, out);
                for o in out.iter_mut() {
                    *o *= survival;
                    if sigma > 0.0 {
                        *o += normal(0.0, sigma, &mut self.rng);
                    }
                }
            }
            Fidelity::Cell => {
                let w = self
                    .cell_weights
                    .as_ref()
                    .expect("cell weights exist in cell fidelity");
                for (r, o) in out.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for (c, &wj) in weights.iter().enumerate() {
                        if wj != 0.0 {
                            acc += wj * w[r * self.cols + c] as f64;
                        }
                    }
                    let read_sigma = (self.noise.read_sigma.powi(2) + self.noise.pvt_sigma.powi(2))
                        .sqrt()
                        * norm;
                    *o = if read_sigma > 0.0 {
                        acc + normal(0.0, read_sigma, &mut self.rng)
                    } else {
                        acc
                    };
                }
            }
        }
        Ok(())
    }

    /// Panicking convenience wrapper around [`Crossbar::try_mvm_weighted`].
    ///
    /// # Panics
    ///
    /// Panics on power-state violations or dimension mismatch.
    pub fn mvm_weighted(&mut self, weights: &[f64]) -> Vec<f64> {
        self.try_mvm_weighted(weights)
            .expect("crossbar must be active for MVM")
    }
}

/// A logical crossbar folded over `f` physical subarrays of `d` rows each
/// (H3DFact instantiates `d = 256`, `f = 4` per tier; Sec. IV-A).
///
/// Partial column currents from the subarrays are summed in the analog
/// domain before conversion — which is why the noise statistics match a
/// monolithic array of `f·d` rows, while area/TSV accounting (in `arch3d`)
/// sees `f` small arrays.
#[derive(Debug, Clone)]
pub struct TiledCrossbar {
    tiles: Vec<Crossbar>,
    rows_per_tile: usize,
    total_rows: usize,
    /// Reused per-tile query slice (similarity direction).
    tile_query: BipolarVector,
    /// Reused per-tile partial-current buffer (similarity direction).
    tile_partial: Vec<f64>,
}

impl TiledCrossbar {
    /// Programs a codebook across `f` row-tiles of `rows_per_tile` rows.
    ///
    /// # Panics
    ///
    /// Panics unless `book.dim() == f · rows_per_tile`.
    pub fn program(
        book: &Codebook,
        rows_per_tile: usize,
        noise: NoiseSpec,
        fidelity: Fidelity,
        seed: u64,
    ) -> Self {
        let total_rows = book.dim();
        assert!(rows_per_tile > 0, "rows_per_tile must be positive");
        assert_eq!(
            total_rows % rows_per_tile,
            0,
            "dimension {} not divisible by subarray rows {}",
            total_rows,
            rows_per_tile
        );
        let f = total_rows / rows_per_tile;
        let tiles: Vec<Crossbar> = (0..f)
            .map(|t| {
                // Slice rows [t*d, (t+1)*d) of every codevector.
                let sliced: Vec<BipolarVector> = book
                    .vectors()
                    .iter()
                    .map(|v| {
                        let mut slice = BipolarVector::neg_ones(rows_per_tile);
                        slice.copy_bit_range_from(v, t * rows_per_tile);
                        slice
                    })
                    .collect();
                let sub_book = Codebook::from_vectors(sliced);
                Crossbar::program(&sub_book, noise, fidelity, seed.wrapping_add(t as u64))
            })
            .collect();
        let cols = tiles[0].cols();
        Self {
            tiles,
            rows_per_tile,
            total_rows,
            tile_query: BipolarVector::neg_ones(rows_per_tile),
            tile_partial: vec![0.0f64; cols],
        }
    }

    /// Number of subarrays `f`.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Rows per subarray `d`.
    pub fn rows_per_tile(&self) -> usize {
        self.rows_per_tile
    }

    /// Total logical rows `D = f·d`.
    pub fn rows(&self) -> usize {
        self.total_rows
    }

    /// Columns `M`.
    pub fn cols(&self) -> usize {
        self.tiles[0].cols()
    }

    /// Aggregated access statistics over all tiles.
    pub fn stats(&self) -> AccessStats {
        let mut s = AccessStats::default();
        for t in &self.tiles {
            s.mvms += t.stats().mvms;
            s.weighted_mvms += t.stats().weighted_mvms;
            s.row_activations += t.stats().row_activations;
            s.programs += t.stats().programs;
        }
        s
    }

    /// Sets the power mode of every tile.
    pub fn set_power_mode(&mut self, mode: PowerMode) {
        for t in &mut self.tiles {
            t.set_power_mode(mode);
        }
    }

    /// Enables an IR-drop model on every tile's similarity readout.
    pub fn with_ir_drop(mut self, model: IrDropModel) -> Self {
        self.tiles = self
            .tiles
            .into_iter()
            .map(|t| t.with_ir_drop(model))
            .collect();
        self
    }

    /// Similarity MVM over the folded array: analog partial sums from the
    /// tiles are added before readout.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] if any tile is not active.
    pub fn try_mvm_bipolar(&mut self, query: &BipolarVector) -> Result<Vec<f64>, PowerStateError> {
        let mut acc = vec![0.0f64; self.cols()];
        self.try_mvm_bipolar_into(query, &mut acc)?;
        Ok(acc)
    }

    /// Allocation-free [`TiledCrossbar::try_mvm_bipolar`]: accumulates the
    /// tiles' partial column currents into `out` using internal scratch.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] if any tile is not active.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn try_mvm_bipolar_into(
        &mut self,
        query: &BipolarVector,
        out: &mut [f64],
    ) -> Result<(), PowerStateError> {
        assert_eq!(query.dim(), self.total_rows, "query dimension mismatch");
        assert_eq!(out.len(), self.tiles[0].cols(), "output length mismatch");
        out.fill(0.0);
        for (t, tile) in self.tiles.iter_mut().enumerate() {
            self.tile_query
                .copy_bit_range_from(query, t * self.rows_per_tile);
            tile.try_mvm_bipolar_into(&self.tile_query, &mut self.tile_partial)?;
            for (a, &p) in out.iter_mut().zip(&self.tile_partial) {
                *a += p;
            }
        }
        Ok(())
    }

    /// Panicking wrapper around [`TiledCrossbar::try_mvm_bipolar`].
    ///
    /// # Panics
    ///
    /// Panics on power-state violations or dimension mismatch.
    pub fn mvm_bipolar(&mut self, query: &BipolarVector) -> Vec<f64> {
        self.try_mvm_bipolar(query)
            .expect("all tiles must be active for MVM")
    }

    /// Projection MVM over the folded array: each tile produces the row
    /// sums for its slice of the dimension; outputs concatenate to the
    /// full `D`-vector.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] if any tile is not active.
    pub fn try_mvm_weighted(&mut self, weights: &[f64]) -> Result<Vec<f64>, PowerStateError> {
        let mut out = vec![0.0f64; self.total_rows];
        self.try_mvm_weighted_into(weights, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`TiledCrossbar::try_mvm_weighted`]: each tile writes
    /// the row sums of its dimension slice directly into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] if any tile is not active.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn try_mvm_weighted_into(
        &mut self,
        weights: &[f64],
        out: &mut [f64],
    ) -> Result<(), PowerStateError> {
        assert_eq!(out.len(), self.total_rows, "output length mismatch");
        for (t, tile) in self.tiles.iter_mut().enumerate() {
            let slice = &mut out[t * self.rows_per_tile..(t + 1) * self.rows_per_tile];
            tile.try_mvm_weighted_into(weights, slice)?;
        }
        Ok(())
    }

    /// Panicking wrapper around [`TiledCrossbar::try_mvm_weighted`].
    ///
    /// # Panics
    ///
    /// Panics on power-state violations or dimension mismatch.
    pub fn mvm_weighted(&mut self, weights: &[f64]) -> Vec<f64> {
        self.try_mvm_weighted(weights)
            .expect("all tiles must be active for MVM")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;
    use hdc::stats::Summary;

    fn book(m: usize, d: usize, seed: u64) -> Codebook {
        Codebook::random(m, d, &mut rng_from_seed(seed))
    }

    #[test]
    fn ideal_column_mvm_is_exact() {
        let b = book(8, 256, 60);
        let mut x = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Column, 1);
        let q = BipolarVector::random(256, &mut rng_from_seed(61));
        let out = x.mvm_bipolar(&q);
        for (j, o) in out.iter().enumerate() {
            assert_eq!(*o, b.vector(j).dot(&q) as f64);
        }
    }

    #[test]
    fn ideal_cell_mvm_is_exact() {
        let b = book(8, 128, 62);
        let mut x = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Cell, 1);
        let q = BipolarVector::random(128, &mut rng_from_seed(63));
        let out = x.mvm_bipolar(&q);
        for (j, o) in out.iter().enumerate() {
            assert!((o - b.vector(j).dot(&q) as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn noisy_mvm_centers_on_ideal() {
        let b = book(4, 256, 64);
        let mut x = Crossbar::program(&b, NoiseSpec::chip_40nm(), Fidelity::Column, 2);
        let q = b.vector(0).clone();
        let s: Summary = (0..2000).map(|_| x.mvm_bipolar(&q)[0]).collect();
        let expect = 256.0 * (1.0 - NoiseSpec::chip_40nm().stuck_at_rate);
        assert!((s.mean() - expect).abs() < 1.0, "mean {}", s.mean());
        let sigma = NoiseSpec::chip_40nm().column_sigma(256);
        assert!((s.std_dev() - sigma).abs() < 0.3, "std {}", s.std_dev());
    }

    #[test]
    fn column_matches_cell_statistics() {
        // The fast column-aggregate path must match the per-cell path in
        // mean and variance of the readout error.
        let b = book(4, 256, 65);
        let noise = NoiseSpec {
            stuck_at_rate: 0.0,
            ..NoiseSpec::chip_40nm()
        };
        let mut col = Crossbar::program(&b, noise, Fidelity::Column, 3);
        let mut cell = Crossbar::program(&b, noise, Fidelity::Cell, 3);
        let q = BipolarVector::random(256, &mut rng_from_seed(66));
        let ideal = b.vector(1).dot(&q) as f64;
        let e_col: Summary = (0..3000).map(|_| col.mvm_bipolar(&q)[1] - ideal).collect();
        let e_cell: Summary = (0..3000).map(|_| cell.mvm_bipolar(&q)[1] - ideal).collect();
        // Cell path has a fixed programming-error offset for a fixed query;
        // across the distribution both are zero-mean with similar spread.
        assert!(e_col.mean().abs() < 0.6, "col mean {}", e_col.mean());
        assert!(
            (e_col.std_dev() - noise.column_sigma(256)).abs() < 0.3,
            "col std {}",
            e_col.std_dev()
        );
        // Cell-path total spread (fresh read noise only, prog error frozen)
        // must be below the column-path aggregate but the same order.
        assert!(e_cell.std_dev() > 0.2 * e_col.std_dev());
        assert!(e_cell.std_dev() < 1.5 * e_col.std_dev());
        // And the frozen programming offset is bounded by a few sigma of the
        // programming-aggregate term.
        assert!(e_cell.mean().abs() < 4.0 * noise.programming_sigma * 16.0);
    }

    #[test]
    fn weighted_mvm_one_hot_reads_column() {
        let b = book(8, 128, 67);
        let mut x = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Column, 4);
        let mut w = vec![0.0; 8];
        w[3] = 2.0;
        let out = x.mvm_weighted(&w);
        for (r, o) in out.iter().enumerate() {
            assert_eq!(*o, 2.0 * b.vector(3).sign(r) as f64);
        }
    }

    #[test]
    fn weighted_mvm_noise_scales_with_weight_norm() {
        let b = book(4, 64, 68);
        let noise = NoiseSpec {
            stuck_at_rate: 0.0,
            ..NoiseSpec::chip_40nm()
        };
        let mut x = Crossbar::program(&b, noise, Fidelity::Column, 5);
        let w_small = vec![1.0, 0.0, 0.0, 0.0];
        let w_big = vec![10.0, 0.0, 0.0, 0.0];
        let e_small: Summary = (0..1500)
            .map(|_| x.mvm_weighted(&w_small)[0] - b.vector(0).sign(0) as f64)
            .collect();
        let e_big: Summary = (0..1500)
            .map(|_| x.mvm_weighted(&w_big)[0] - 10.0 * b.vector(0).sign(0) as f64)
            .collect();
        let ratio = e_big.std_dev() / e_small.std_dev();
        assert!((ratio - 10.0).abs() < 2.0, "ratio {ratio}");
    }

    #[test]
    fn shutdown_blocks_mvm() {
        let b = book(4, 64, 69);
        let mut x = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Column, 6);
        x.set_power_mode(PowerMode::Shutdown);
        let q = BipolarVector::random(64, &mut rng_from_seed(70));
        assert!(x.try_mvm_bipolar(&q).is_err());
        assert!(x.try_mvm_weighted(&[0.0; 4]).is_err());
        x.set_power_mode(PowerMode::Active);
        assert!(x.try_mvm_bipolar(&q).is_ok());
    }

    #[test]
    fn stats_count_accesses() {
        let b = book(4, 64, 71);
        let mut x = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Column, 7);
        let q = BipolarVector::random(64, &mut rng_from_seed(72));
        let _ = x.mvm_bipolar(&q);
        let _ = x.mvm_bipolar(&q);
        let _ = x.mvm_weighted(&[1.0, 0.0, 0.0, 0.0]);
        let s = x.stats();
        assert_eq!(s.mvms, 2);
        assert_eq!(s.weighted_mvms, 1);
        assert_eq!(s.row_activations, 3 * 64);
        assert_eq!(s.programs, (64 * 4 * 2) as u64);
    }

    #[test]
    fn tiled_equals_monolithic_in_ideal_case() {
        let b = book(8, 1024, 73);
        let mut mono = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Column, 8);
        let mut tiled = TiledCrossbar::program(&b, 256, NoiseSpec::ideal(), Fidelity::Column, 8);
        assert_eq!(tiled.tile_count(), 4);
        let q = BipolarVector::random(1024, &mut rng_from_seed(74));
        let a = mono.mvm_bipolar(&q);
        let t = tiled.mvm_bipolar(&q);
        for (x, y) in a.iter().zip(&t) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn tiled_noise_matches_monolithic_sigma() {
        let b = book(2, 1024, 75);
        let noise = NoiseSpec {
            stuck_at_rate: 0.0,
            ..NoiseSpec::chip_40nm()
        };
        let mut tiled = TiledCrossbar::program(&b, 256, noise, Fidelity::Column, 9);
        let q = b.vector(0).clone();
        let s: Summary = (0..2000)
            .map(|_| tiled.mvm_bipolar(&q)[0] - 1024.0)
            .collect();
        // Four tiles of sqrt(256)·σ in quadrature = sqrt(1024)·σ.
        let expect = noise.column_sigma(1024);
        assert!((s.std_dev() - expect).abs() < 0.4, "std {}", s.std_dev());
    }

    #[test]
    fn tiled_weighted_matches_monolithic() {
        let b = book(8, 512, 79);
        let mut mono = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Column, 12);
        let mut tiled = TiledCrossbar::program(&b, 256, NoiseSpec::ideal(), Fidelity::Column, 12);
        let w: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let a = mono.mvm_weighted(&w);
        let t = tiled.mvm_weighted(&w);
        assert_eq!(t.len(), 512);
        for (x, y) in a.iter().zip(&t) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn tiled_shutdown_blocks() {
        let b = book(2, 512, 76);
        let mut tiled = TiledCrossbar::program(&b, 256, NoiseSpec::ideal(), Fidelity::Column, 10);
        tiled.set_power_mode(PowerMode::Shutdown);
        let q = BipolarVector::random(512, &mut rng_from_seed(77));
        assert!(tiled.try_mvm_bipolar(&q).is_err());
    }

    #[test]
    fn ir_drop_attenuates_but_preserves_argmax() {
        use crate::irdrop::IrDropModel;
        let b = book(16, 256, 80);
        let mut ideal = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Column, 13);
        let mut dropped = Crossbar::program(&b, NoiseSpec::ideal(), Fidelity::Column, 13)
            .with_ir_drop(IrDropModel::macro_40nm_raw());
        let q = b.vector(5).clone();
        let oi = ideal.mvm_bipolar(&q);
        let od = dropped.mvm_bipolar(&q);
        assert!(od[5] < oi[5], "drop must attenuate the match current");
        let best = od
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 5, "argmax must survive first-order drop");
    }

    #[test]
    fn write_nonlinearity_compresses_window_in_both_fidelities() {
        let b = book(8, 256, 81);
        let noise = NoiseSpec {
            write_nonlinearity: 0.25,
            ..NoiseSpec::ideal()
        };
        let q = b.vector(2).clone();
        let mut col = Crossbar::program(&b, noise, Fidelity::Column, 14);
        let oc = col.mvm_bipolar(&q);
        assert!((oc[2] - 0.75 * 256.0).abs() < 1e-9, "column path {}", oc[2]);
        let mut cell = Crossbar::program(&b, noise, Fidelity::Cell, 14);
        let ocell = cell.mvm_bipolar(&q);
        assert!(
            (ocell[2] - 0.75 * 256.0).abs() < 1e-3,
            "cell path {}",
            ocell[2]
        );
        // The projection direction pays the same deterministic gain.
        let mut w = vec![0.0; 8];
        w[2] = 1.0;
        let ow = col.mvm_weighted(&w);
        assert!((ow[0].abs() - 0.75).abs() < 1e-9, "weighted {}", ow[0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn tiled_rejects_bad_split() {
        let b = book(2, 100, 78);
        let _ = TiledCrossbar::program(&b, 256, NoiseSpec::ideal(), Fidelity::Column, 11);
    }
}
