//! Noise models for memristive readout.
//!
//! The paper's Sec. V-D extracts "inherent noise parameters from RRAM
//! testchips by measuring the readout signal" and feeds *their statistics*
//! into the factorization framework. This module is the parametric stand-in:
//! per-cell programming variability (log-normal, per Yu et al. TED 2012),
//! per-access read noise, and an aggregate PVT term, all expressed relative
//! to the differential conductance window `G_LRS − G_HRS`.

use serde::{Deserialize, Serialize};

/// Relative noise magnitudes for an RRAM CIM array.
///
/// All sigmas are relative to one unit of differential cell conductance, so
/// a column dot-product over `R` active rows picks up Gaussian noise with
/// standard deviation `sigma_total() * sqrt(R)` in dot-product units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Sigma of persistent per-cell programming error (log-normal shape
    /// parameter; small values ≈ relative Gaussian).
    pub programming_sigma: f64,
    /// Sigma of fresh per-access read noise (thermal + shot + sense chain).
    pub read_sigma: f64,
    /// Sigma of slow PVT variation aggregated at the column level.
    pub pvt_sigma: f64,
    /// Probability that a device is stuck at the high-resistance state
    /// (contributing zero differential signal).
    pub stuck_at_rate: f64,
    /// Fractional loss of the differential conductance window caused by the
    /// nonlinear G–V programming curve: real write pulses land short of the
    /// nominal LRS/HRS targets, compressing the window by this fraction at
    /// crossbar write time (a deterministic gain `1 − write_nonlinearity`
    /// on every programmed weight). `0.0` is an ideal linear write.
    pub write_nonlinearity: f64,
}

impl NoiseSpec {
    /// A noiseless (fully deterministic) array — the digital-SRAM baseline.
    pub fn ideal() -> Self {
        Self {
            programming_sigma: 0.0,
            read_sigma: 0.0,
            pvt_sigma: 0.0,
            stuck_at_rate: 0.0,
            write_nonlinearity: 0.0,
        }
    }

    /// Noise statistics calibrated to the 40 nm RRAM test-chip regime the
    /// paper cites (ISSCC'22/VLSI'23 macros): a few-percent relative cell
    /// error dominated by programming variability, plus read/PVT terms.
    pub fn chip_40nm() -> Self {
        Self {
            programming_sigma: 0.12,
            read_sigma: 0.06,
            pvt_sigma: 0.03,
            stuck_at_rate: 0.001,
            write_nonlinearity: 0.0,
        }
    }

    /// The chip model with every stochastic term scaled by `factor` —
    /// the knob used for noise-amplitude ablations.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn chip_40nm_scaled(factor: f64) -> Self {
        assert!(factor >= 0.0, "noise scale must be non-negative");
        let base = Self::chip_40nm();
        Self {
            programming_sigma: base.programming_sigma * factor,
            read_sigma: base.read_sigma * factor,
            pvt_sigma: base.pvt_sigma * factor,
            stuck_at_rate: base.stuck_at_rate * factor.min(1.0),
            write_nonlinearity: base.write_nonlinearity * factor.min(1.0),
        }
    }

    /// Deterministic multiplicative gain the nonlinear write curve applies
    /// to every programmed differential weight (`1 − write_nonlinearity`).
    ///
    /// # Panics
    ///
    /// Panics if `write_nonlinearity` is outside `[0, 1)`.
    pub fn write_gain(&self) -> f64 {
        assert!(
            (0.0..1.0).contains(&self.write_nonlinearity),
            "write_nonlinearity must be in [0, 1)"
        );
        1.0 - self.write_nonlinearity
    }

    /// Quadrature sum of all per-cell relative sigmas.
    pub fn sigma_total(&self) -> f64 {
        (self.programming_sigma.powi(2) + self.read_sigma.powi(2) + self.pvt_sigma.powi(2)).sqrt()
    }

    /// Standard deviation of the column dot-product noise for `rows` active
    /// word lines, in dot-product (element) units.
    pub fn column_sigma(&self, rows: usize) -> f64 {
        self.sigma_total() * (rows as f64).sqrt()
    }

    /// True if every stochastic term is zero.
    pub fn is_deterministic(&self) -> bool {
        self.sigma_total() == 0.0 && self.stuck_at_rate == 0.0
    }
}

impl Default for NoiseSpec {
    /// Defaults to the chip-calibrated 40 nm model.
    fn default() -> Self {
        Self::chip_40nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_deterministic() {
        assert!(NoiseSpec::ideal().is_deterministic());
        assert_eq!(NoiseSpec::ideal().column_sigma(256), 0.0);
    }

    #[test]
    fn chip_noise_is_stochastic() {
        let n = NoiseSpec::chip_40nm();
        assert!(!n.is_deterministic());
        assert!(n.sigma_total() > 0.1 && n.sigma_total() < 0.2);
    }

    #[test]
    fn column_sigma_grows_sqrt() {
        let n = NoiseSpec::chip_40nm();
        let s64 = n.column_sigma(64);
        let s256 = n.column_sigma(256);
        assert!((s256 / s64 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_by_zero_gives_ideal_sigmas() {
        let n = NoiseSpec::chip_40nm_scaled(0.0);
        assert_eq!(n.sigma_total(), 0.0);
        assert_eq!(n.stuck_at_rate, 0.0);
    }

    #[test]
    fn write_gain_complements_nonlinearity() {
        assert_eq!(NoiseSpec::ideal().write_gain(), 1.0);
        let n = NoiseSpec {
            write_nonlinearity: 0.2,
            ..NoiseSpec::ideal()
        };
        assert!((n.write_gain() - 0.8).abs() < 1e-15);
        // A deterministic window compression is not a stochastic term.
        assert!(n.is_deterministic());
    }

    #[test]
    #[should_panic(expected = "write_nonlinearity")]
    fn write_gain_rejects_out_of_range() {
        let n = NoiseSpec {
            write_nonlinearity: 1.0,
            ..NoiseSpec::ideal()
        };
        let _ = n.write_gain();
    }

    #[test]
    fn scaling_doubles_sigma() {
        let n1 = NoiseSpec::chip_40nm();
        let n2 = NoiseSpec::chip_40nm_scaled(2.0);
        assert!((n2.sigma_total() / n1.sigma_total() - 2.0).abs() < 1e-12);
    }
}
