//! Technology-node descriptors and node-to-node scaling rules.
//!
//! H3DFact's hybrid-node design keeps RRAM on a legacy 40 nm node (the
//! programming voltages need thick-oxide devices) while the RRAM peripherals
//! and all digital logic move to 16 nm. The scaling factors here are the
//! classic Dennard-style area/energy rules used by CIM benchmarking
//! frameworks; they are deliberately simple and documented so the PPA
//! roll-up in `arch3d` is auditable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A CMOS technology node used somewhere in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// Legacy 40 nm node: hosts the RRAM arrays (supports the high
    /// set/reset programming voltages).
    N40,
    /// Advanced 16 nm node: hosts RRAM peripherals, SRAM, and logic.
    N16,
}

impl TechNode {
    /// Drawn feature size in nanometres.
    pub fn feature_nm(self) -> f64 {
        match self {
            TechNode::N40 => 40.0,
            TechNode::N16 => 16.0,
        }
    }

    /// Nominal core supply voltage in volts.
    pub fn vdd(self) -> f64 {
        match self {
            TechNode::N40 => 1.1,
            TechNode::N16 => 0.8,
        }
    }

    /// Logic/SRAM area scale factor relative to 40 nm (≈ (F/40)², tempered
    /// by imperfect SRAM scaling at advanced nodes).
    pub fn area_scale_vs_40(self) -> f64 {
        match self {
            TechNode::N40 => 1.0,
            // Ideal quadratic scaling would be (16/40)^2 = 0.16; real designs
            // see ~0.20 for logic-dominated blocks because interconnect and
            // SRAM scale more slowly.
            TechNode::N16 => 0.20,
        }
    }

    /// Dynamic-energy scale factor relative to 40 nm (≈ C·V² scaling).
    pub fn energy_scale_vs_40(self) -> f64 {
        match self {
            TechNode::N40 => 1.0,
            // C scales ~linearly with feature size, V² by (0.8/1.1)².
            TechNode::N16 => (16.0 / 40.0) * (0.8f64 / 1.1).powi(2),
        }
    }

    /// Achievable logic clock scale factor relative to 40 nm.
    pub fn frequency_scale_vs_40(self) -> f64 {
        match self {
            TechNode::N40 => 1.0,
            TechNode::N16 => 2.2,
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechNode::N40 => write!(f, "40 nm"),
            TechNode::N16 => write!(f, "16 nm"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_factors_are_sane() {
        assert_eq!(TechNode::N40.area_scale_vs_40(), 1.0);
        assert!(TechNode::N16.area_scale_vs_40() < 0.3);
        assert!(TechNode::N16.energy_scale_vs_40() < 0.35);
        assert!(TechNode::N16.frequency_scale_vs_40() > 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(TechNode::N40.to_string(), "40 nm");
        assert_eq!(TechNode::N16.to_string(), "16 nm");
    }

    #[test]
    fn feature_and_vdd() {
        assert_eq!(TechNode::N40.feature_nm(), 40.0);
        assert_eq!(TechNode::N16.feature_nm(), 16.0);
        assert!(TechNode::N16.vdd() < TechNode::N40.vdd());
    }
}
