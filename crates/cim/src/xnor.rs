//! The XNOR unbinding unit of the hybrid-computing scheme.
//!
//! The unbinding operand changes *every iteration* of the factorization, so
//! keeping it in RRAM would require constant (and extremely expensive)
//! memory writes (Sec. III-B). H3DFact instead performs unbinding with
//! digital XNOR gates next to SRAM in tier-1. Bit-packed bipolar
//! multiplication *is* XNOR, so this unit wraps the substrate's `bind` with
//! gate-level operation accounting for the energy roll-up.

use serde::{Deserialize, Serialize};

use hdc::BipolarVector;

/// Digital XNOR unbinding unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct XnorUnit {
    gate_ops: u64,
    unbinds: u64,
}

impl XnorUnit {
    /// Creates a unit with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total XNOR gate evaluations so far.
    pub fn gate_ops(&self) -> u64 {
        self.gate_ops
    }

    /// Total vector unbind operations so far.
    pub fn unbinds(&self) -> u64 {
        self.unbinds
    }

    /// Unbinds `b` from `a` (element-wise multiply; self-inverse).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn unbind(&mut self, a: &BipolarVector, b: &BipolarVector) -> BipolarVector {
        self.unbinds += 1;
        self.gate_ops += a.dim() as u64;
        a.bind(b)
    }

    /// Unbinds several vectors from `a` in sequence (the `s ⊙ ĉ ⊙ v̂ ⊙ ĥ`
    /// terms of the resonator update).
    pub fn unbind_all(&mut self, a: &BipolarVector, others: &[&BipolarVector]) -> BipolarVector {
        let mut acc = a.clone();
        self.unbind_all_into_acc(others, &mut acc);
        acc
    }

    /// Allocation-free [`XnorUnit::unbind_all`]: writes `a ⊙ o₁ ⊙ … ⊙ o_k`
    /// into the caller-provided `out`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn unbind_all_into(
        &mut self,
        a: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    ) {
        out.copy_from(a);
        self.unbind_all_into_acc(others, out);
    }

    fn unbind_all_into_acc(&mut self, others: &[&BipolarVector], acc: &mut BipolarVector) {
        for o in others {
            self.unbinds += 1;
            self.gate_ops += acc.dim() as u64;
            acc.bind_assign(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    #[test]
    fn unbind_is_bind() {
        let mut rng = rng_from_seed(95);
        let a = BipolarVector::random(128, &mut rng);
        let b = BipolarVector::random(128, &mut rng);
        let mut u = XnorUnit::new();
        assert_eq!(u.unbind(&a, &b), a.bind(&b));
        assert_eq!(u.unbinds(), 1);
        assert_eq!(u.gate_ops(), 128);
    }

    #[test]
    fn unbind_all_recovers_factor() {
        let mut rng = rng_from_seed(96);
        let xs: Vec<_> = (0..4)
            .map(|_| BipolarVector::random(256, &mut rng))
            .collect();
        let product = hdc::bind_all(&xs);
        let mut u = XnorUnit::new();
        let recovered = u.unbind_all(&product, &[&xs[1], &xs[2], &xs[3]]);
        assert_eq!(recovered, xs[0]);
        assert_eq!(u.unbinds(), 3);
        assert_eq!(u.gate_ops(), 3 * 256);
    }
}
