//! Input drivers: bit-serial DAC for multi-bit word-line stimulation.
//!
//! The projection MVM drives the array with the 4-bit quantized
//! similarities (paper Fig. 3, step III→IV). Analog CIM arrays realize
//! multi-bit inputs *bit-serially*: one read pulse per input bit, partial
//! results shifted-and-added with binary weights. This module models that
//! datapath: code decomposition, per-pulse energy, cycle cost, and the
//! exact reconstruction guarantee the scheme relies on.

use serde::{Deserialize, Serialize};

/// Bit-serial input driver for signed multi-bit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSerialDac {
    /// Input resolution in bits (sign + magnitude).
    pub bits: u8,
}

impl BitSerialDac {
    /// Creates a driver for `bits`-bit signed codes.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16`.
    pub fn new(bits: u8) -> Self {
        assert!((2..=16).contains(&bits), "DAC resolution out of range");
        Self { bits }
    }

    /// Largest representable magnitude, `2^(bits-1) − 1`.
    pub fn max_magnitude(&self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }

    /// Decomposes a signed code into `(sign, magnitude bit-planes)` from
    /// LSB to MSB. Each plane is pulsed on the word line in one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `|code|` exceeds the resolution.
    pub fn bit_planes(&self, code: i32) -> (i8, Vec<bool>) {
        assert!(
            code.abs() <= self.max_magnitude(),
            "code {code} exceeds {}-bit range",
            self.bits
        );
        let sign = if code < 0 { -1 } else { 1 };
        let mag = code.unsigned_abs();
        let planes = (0..self.bits - 1).map(|b| mag >> b & 1 == 1).collect();
        (sign, planes)
    }

    /// Reconstructs the code from its decomposition (what the
    /// shift-and-add accumulator computes).
    pub fn reconstruct(&self, sign: i8, planes: &[bool]) -> i32 {
        let mag: i32 = planes
            .iter()
            .enumerate()
            .map(|(b, &on)| if on { 1 << b } else { 0 })
            .sum();
        sign as i32 * mag
    }

    /// Read pulses needed for one full vector drive (one per magnitude
    /// bit; sign selects the source-line polarity and costs no extra
    /// pulse).
    pub fn pulses_per_drive(&self) -> u32 {
        self.bits as u32 - 1
    }

    /// Energy of driving one word line for one full code, joules:
    /// one pulse per magnitude bit at `e_pulse_j` each.
    pub fn drive_energy_j(&self, e_pulse_j: f64) -> f64 {
        self.pulses_per_drive() as f64 * e_pulse_j
    }

    /// The exact bit-serial MVM: `Σ_b 2^b · (plane_b · column)`, applied
    /// to a whole weight vector against a stored ±1 column. Used by tests
    /// to prove equivalence with the direct weighted sum.
    pub fn bit_serial_dot(&self, codes: &[i32], column_signs: &[i8]) -> i64 {
        assert_eq!(codes.len(), column_signs.len(), "length mismatch");
        let mut acc = 0i64;
        for b in 0..(self.bits - 1) as usize {
            let mut partial = 0i64;
            for (&code, &s) in codes.iter().zip(column_signs) {
                let (sign, planes) = self.bit_planes(code);
                if planes[b] {
                    partial += sign as i64 * s as i64;
                }
            }
            acc += partial << b;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;
    use rand::Rng;

    #[test]
    fn planes_roundtrip() {
        let dac = BitSerialDac::new(4);
        for code in -7i32..=7 {
            let (sign, planes) = dac.bit_planes(code);
            assert_eq!(planes.len(), 3);
            assert_eq!(dac.reconstruct(sign, &planes), code);
        }
    }

    #[test]
    fn bit_serial_dot_matches_direct() {
        let dac = BitSerialDac::new(4);
        let mut rng = rng_from_seed(600);
        let codes: Vec<i32> = (0..64).map(|_| rng.gen_range(-7..=7)).collect();
        let column: Vec<i8> = (0..64)
            .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
            .collect();
        let direct: i64 = codes
            .iter()
            .zip(&column)
            .map(|(&c, &s)| c as i64 * s as i64)
            .sum();
        assert_eq!(dac.bit_serial_dot(&codes, &column), direct);
    }

    #[test]
    fn pulse_and_energy_accounting() {
        let dac4 = BitSerialDac::new(4);
        let dac8 = BitSerialDac::new(8);
        assert_eq!(dac4.pulses_per_drive(), 3);
        assert_eq!(dac8.pulses_per_drive(), 7);
        // 8-bit inputs cost proportionally more drive energy — part of why
        // the 4-bit design wins Table III's energy column.
        assert!(dac8.drive_energy_j(1e-13) > dac4.drive_energy_j(1e-13));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_code_rejected() {
        let _ = BitSerialDac::new(4).bit_planes(8);
    }
}
