//! IR-drop along bit lines: the spatial non-ideality of large crossbars.
//!
//! Cell currents accumulate along the bit line's wire resistance, so rows
//! far from the sense amplifier contribute less than near rows — an
//! *input-dependent, systematic* error unlike the stochastic device noise
//! in `noise.rs`. The paper's array design counters it with the
//! `I_CELL·R_BL/SL` drop mitigation of the underlying 40 nm macro
//! (Spetalnick et al., VLSI'23 — reference [22]); this module provides the
//! first-order model and the mitigation so that ablations can quantify
//! what the macro technique buys the factorizer.

use serde::{Deserialize, Serialize};

use hdc::BipolarVector;

/// First-order bit-line IR-drop model.
///
/// Row `r` (0 = closest to the sense amp) sees its contribution scaled by
/// `1 / (1 + α·(R−1−r)/R)` where `α = R_wire·G_cell·R` aggregates the wire
/// resistance per segment against the cell conductance: the farthest row
/// loses the most signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IrDropModel {
    /// Aggregate drop severity `α` (0 = ideal wires). A 256-row array in a
    /// 40 nm metal stack with ~1 Ω/segment and 50 µS cells gives α ≈ 0.1–0.3.
    pub alpha: f64,
    /// True when the macro's drop-mitigation (reference-column
    /// compensation) is enabled: the systematic attenuation profile is
    /// divided out, leaving only its (small) input-dependent residue.
    pub mitigated: bool,
}

impl IrDropModel {
    /// Ideal wires (no drop).
    pub fn ideal() -> Self {
        Self {
            alpha: 0.0,
            mitigated: false,
        }
    }

    /// The 40 nm macro's regime, uncompensated.
    pub fn macro_40nm_raw() -> Self {
        Self {
            alpha: 0.25,
            mitigated: false,
        }
    }

    /// The 40 nm macro's regime with its drop-mitigation enabled ([22]).
    pub fn macro_40nm_mitigated() -> Self {
        Self {
            alpha: 0.25,
            mitigated: true,
        }
    }

    /// Attenuation factor of row `r` in an array of `rows`.
    pub fn row_gain(&self, r: usize, rows: usize) -> f64 {
        assert!(r < rows, "row out of range");
        if self.alpha == 0.0 {
            return 1.0;
        }
        let distance = (rows - 1 - r) as f64 / rows as f64;
        let raw = 1.0 / (1.0 + self.alpha * distance);
        if self.mitigated {
            // Reference-column compensation divides out the nominal
            // profile; a 5 % residue remains (mismatch between the
            // reference and data columns' activity patterns).
            let nominal = 1.0 / (1.0 + self.alpha * distance);
            1.0 + 0.05 * (raw / nominal - 1.0)
        } else {
            raw
        }
    }

    /// Dot product of a stored ±1 column with a bipolar query under the
    /// drop profile (the quantity replacing the ideal popcount dot).
    pub fn attenuated_dot(&self, column: &BipolarVector, query: &BipolarVector) -> f64 {
        assert_eq!(column.dim(), query.dim(), "dimension mismatch");
        self.attenuated_dot_words(column.words(), query.words(), column.dim())
    }

    /// Word-level [`IrDropModel::attenuated_dot`]: the column is given as
    /// its packed sign words (set bit = `+1`), so crossbars can feed their
    /// packed storage directly without materializing `BipolarVector`s.
    ///
    /// # Panics
    ///
    /// Panics if either word slice is shorter than `rows` bits.
    pub fn attenuated_dot_words(&self, column: &[u64], query: &[u64], rows: usize) -> f64 {
        (0..rows)
            .map(|r| {
                let (wi, b) = (r / 64, r % 64);
                // Sign product is +1 exactly when the bits agree.
                let sign = 1.0 - 2.0 * ((column[wi] ^ query[wi]) >> b & 1) as f64;
                self.row_gain(r, rows) * sign
            })
            .sum()
    }

    /// Worst-case relative error of the attenuated dot vs the ideal dot
    /// over an all-agreeing input (the calibration figure of merit).
    pub fn worst_case_error(&self, rows: usize) -> f64 {
        let ideal = rows as f64;
        let atten: f64 = (0..rows).map(|r| self.row_gain(r, rows)).sum();
        (ideal - atten).abs() / ideal
    }
}

impl Default for IrDropModel {
    fn default() -> Self {
        Self::macro_40nm_mitigated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    #[test]
    fn ideal_has_unity_gain() {
        let m = IrDropModel::ideal();
        for r in [0usize, 100, 255] {
            assert_eq!(m.row_gain(r, 256), 1.0);
        }
        assert_eq!(m.worst_case_error(256), 0.0);
    }

    #[test]
    fn far_rows_attenuate_more() {
        let m = IrDropModel::macro_40nm_raw();
        // Row 255 is nearest the sense amp; row 0 is farthest.
        assert!(m.row_gain(0, 256) < m.row_gain(255, 256));
        assert!(m.row_gain(0, 256) > 0.7, "drop should be first-order");
    }

    #[test]
    fn mitigation_recovers_most_signal() {
        let raw = IrDropModel::macro_40nm_raw();
        let fixed = IrDropModel::macro_40nm_mitigated();
        let e_raw = raw.worst_case_error(256);
        let e_fixed = fixed.worst_case_error(256);
        assert!(e_raw > 0.05, "raw error {e_raw}");
        assert!(e_fixed < e_raw / 5.0, "mitigated error {e_fixed}");
    }

    #[test]
    fn attenuated_dot_bounded_by_ideal() {
        let m = IrDropModel::macro_40nm_raw();
        let mut rng = rng_from_seed(610);
        let a = BipolarVector::random(256, &mut rng);
        let d = m.attenuated_dot(&a, &a);
        assert!(d < 256.0 && d > 0.8 * 256.0, "self-dot {d}");
    }

    #[test]
    fn attenuation_preserves_match_ordering() {
        // The factorizer only needs the *argmax* to survive; under
        // first-order drop the matching column still wins clearly.
        let m = IrDropModel::macro_40nm_raw();
        let mut rng = rng_from_seed(611);
        let target = BipolarVector::random(256, &mut rng);
        let others: Vec<BipolarVector> = (0..16)
            .map(|_| BipolarVector::random(256, &mut rng))
            .collect();
        let match_score = m.attenuated_dot(&target, &target);
        for o in &others {
            assert!(m.attenuated_dot(o, &target) < match_score / 2.0);
        }
    }
}
