//! Energy bookkeeping across the mixed-signal datapath.
//!
//! Every hardware unit counts its own accesses; the engine converts counts
//! into joules using per-op figures and accumulates them here, broken down
//! by component so the benchmark harness can report the paper's
//! TOPS/W-style aggregates and per-phase splits (Fig. 1c).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A named energy component of the factorization datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EnergyComponent {
    /// Similarity MVMs in the RRAM tier (tier-3).
    SimilarityMvm,
    /// Projection MVMs in the RRAM tier (tier-2).
    ProjectionMvm,
    /// Analog-to-digital conversion of column currents.
    Adc,
    /// Digital XNOR unbinding.
    Unbind,
    /// Activation / thresholding logic.
    Activation,
    /// SRAM buffer accesses.
    SramBuffer,
    /// Tier-to-tier interconnect (TSV/hybrid-bond) switching.
    Interconnect,
    /// Control, clocking, and miscellaneous digital.
    Control,
    /// RRAM programming pulses (codebook loads).
    RramProgram,
    /// Static leakage integrated over runtime.
    Leakage,
}

impl EnergyComponent {
    /// All components in display order.
    pub const ALL: [EnergyComponent; 10] = [
        EnergyComponent::SimilarityMvm,
        EnergyComponent::ProjectionMvm,
        EnergyComponent::Adc,
        EnergyComponent::Unbind,
        EnergyComponent::Activation,
        EnergyComponent::SramBuffer,
        EnergyComponent::Interconnect,
        EnergyComponent::Control,
        EnergyComponent::RramProgram,
        EnergyComponent::Leakage,
    ];
}

impl fmt::Display for EnergyComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EnergyComponent::SimilarityMvm => "similarity-mvm",
            EnergyComponent::ProjectionMvm => "projection-mvm",
            EnergyComponent::Adc => "adc",
            EnergyComponent::Unbind => "unbind",
            EnergyComponent::Activation => "activation",
            EnergyComponent::SramBuffer => "sram-buffer",
            EnergyComponent::Interconnect => "interconnect",
            EnergyComponent::Control => "control",
            EnergyComponent::RramProgram => "rram-program",
            EnergyComponent::Leakage => "leakage",
        };
        f.write_str(name)
    }
}

/// Accumulated energy by component, in joules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    joules: BTreeMap<EnergyComponent, f64>,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `joules` to `component`.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or non-finite.
    pub fn add(&mut self, component: EnergyComponent, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy must be finite and non-negative, got {joules}"
        );
        *self.joules.entry(component).or_insert(0.0) += joules;
    }

    /// Energy recorded for `component` (0 if none).
    pub fn get(&self, component: EnergyComponent) -> f64 {
        self.joules.get(&component).copied().unwrap_or(0.0)
    }

    /// Total energy across all components.
    pub fn total(&self) -> f64 {
        self.joules.values().sum()
    }

    /// Fraction of the total contributed by `component` (0 on empty ledger).
    pub fn fraction(&self, component: EnergyComponent) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.get(component) / t
        }
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (&c, &j) in &other.joules {
            self.add(c, j);
        }
    }

    /// Iterates `(component, joules)` in display order, skipping zeros.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyComponent, f64)> + '_ {
        EnergyComponent::ALL
            .into_iter()
            .filter_map(|c| self.joules.get(&c).map(|&j| (c, j)))
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "energy ledger ({:.3e} J total):", self.total())?;
        for (c, j) in self.iter() {
            writeln!(
                f,
                "  {c:<16} {j:.3e} J ({:>5.1} %)",
                100.0 * self.fraction(c)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut l = EnergyLedger::new();
        l.add(EnergyComponent::Adc, 1e-12);
        l.add(EnergyComponent::Adc, 2e-12);
        l.add(EnergyComponent::Unbind, 1e-12);
        assert!((l.get(EnergyComponent::Adc) - 3e-12).abs() < 1e-24);
        assert!((l.total() - 4e-12).abs() < 1e-24);
        assert!((l.fraction(EnergyComponent::Adc) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_components() {
        let mut a = EnergyLedger::new();
        a.add(EnergyComponent::Control, 1.0);
        let mut b = EnergyLedger::new();
        b.add(EnergyComponent::Control, 2.0);
        b.add(EnergyComponent::Leakage, 0.5);
        a.merge(&b);
        assert_eq!(a.get(EnergyComponent::Control), 3.0);
        assert_eq!(a.get(EnergyComponent::Leakage), 0.5);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = EnergyLedger::new();
        assert_eq!(l.total(), 0.0);
        assert_eq!(l.fraction(EnergyComponent::Adc), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_rejected() {
        let mut l = EnergyLedger::new();
        l.add(EnergyComponent::Adc, -1.0);
    }

    #[test]
    fn display_lists_components() {
        let mut l = EnergyLedger::new();
        l.add(EnergyComponent::SimilarityMvm, 1e-9);
        let s = l.to_string();
        assert!(s.contains("similarity-mvm"));
    }
}
