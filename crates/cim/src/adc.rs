//! SAR ADC model for CIM column readout.
//!
//! H3DFact assigns each RRAM column a 4-bit SAR ADC in the 16 nm tier
//! (Sec. IV-B) and shows (Fig. 6a) that *lowering* ADC precision speeds up
//! factorization convergence: coarse quantization sparsifies the similarity
//! vector (small similarities collapse to zero) and adds quantization
//! stochasticity that breaks limit cycles.
//!
//! The quantizer is a signed mid-tread design: codes span
//! `[-(2^(b-1)-1), 2^(b-1)-1]`, inputs clip at the full-scale range, and
//! instance-specific offset/gain errors are sampled at construction.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hdc::stats::normal;

/// Configuration of one SAR ADC instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdcConfig {
    /// Resolution in bits (including the sign); H3DFact uses 4.
    pub bits: u8,
    /// Full-scale input magnitude in dot-product units; inputs outside
    /// `[-full_scale, +full_scale]` saturate.
    pub full_scale: f64,
    /// Sigma of the per-instance input-referred offset, in dot-product
    /// units.
    pub offset_sigma: f64,
    /// Sigma of the per-instance relative gain error.
    pub gain_sigma: f64,
}

impl AdcConfig {
    /// The paper's similarity-readout ADC: 4-bit, offsets calibrated out.
    ///
    /// `full_scale` should normally be the maximum column dot product
    /// (the number of active rows `D`).
    pub fn paper_4bit(full_scale: f64) -> Self {
        Self {
            bits: 4,
            full_scale,
            offset_sigma: 0.0,
            gain_sigma: 0.0,
        }
    }

    /// The high-precision comparison point of Fig. 6a.
    pub fn paper_8bit(full_scale: f64) -> Self {
        Self {
            bits: 8,
            full_scale,
            offset_sigma: 0.0,
            gain_sigma: 0.0,
        }
    }

    /// Quantization step (LSB size) in input units.
    pub fn step(&self) -> f64 {
        self.full_scale / self.max_code() as f64
    }

    /// Largest positive output code, `2^(b-1) − 1`.
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Energy of one conversion in joules, following the SAR rule of thumb
    /// `E ≈ E_cmp · b + E_dac · 2^b` with 16 nm-class constants. Used by the
    /// PPA roll-up in `arch3d`.
    pub fn conversion_energy_j(&self) -> f64 {
        let b = self.bits as f64;
        50e-15 * b + 2e-15 * 2f64.powf(b)
    }

    /// Latency of one conversion in clock cycles (one bit-cycle per bit).
    pub fn conversion_cycles(&self) -> u32 {
        self.bits as u32
    }
}

/// One instantiated SAR ADC with sampled offset/gain errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SarAdc {
    config: AdcConfig,
    offset: f64,
    gain: f64,
}

impl SarAdc {
    /// Instantiates an ADC, sampling instance errors from `config`.
    pub fn new<R: Rng + ?Sized>(config: AdcConfig, rng: &mut R) -> Self {
        assert!(
            (2..=16).contains(&config.bits),
            "ADC resolution must be 2..=16 bits"
        );
        assert!(config.full_scale > 0.0, "full scale must be positive");
        let offset = if config.offset_sigma > 0.0 {
            normal(0.0, config.offset_sigma, rng)
        } else {
            0.0
        };
        let gain = if config.gain_sigma > 0.0 {
            1.0 + normal(0.0, config.gain_sigma, rng)
        } else {
            1.0
        };
        Self {
            config,
            offset,
            gain,
        }
    }

    /// An ideal instance (zero offset, unity gain) of `config`.
    pub fn ideal(config: AdcConfig) -> Self {
        assert!(
            (2..=16).contains(&config.bits),
            "ADC resolution must be 2..=16 bits"
        );
        assert!(config.full_scale > 0.0, "full scale must be positive");
        Self {
            config,
            offset: 0.0,
            gain: 1.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> AdcConfig {
        self.config
    }

    /// Converts an analog value to its output code.
    pub fn convert_code(&self, x: f64) -> i32 {
        let max = self.config.max_code();
        let scaled = (x * self.gain + self.offset) / self.config.step();
        let code = scaled.round();
        if code > max as f64 {
            max
        } else if code < -max as f64 {
            -max
        } else {
            code as i32
        }
    }

    /// Converts and de-quantizes back to input units (what the digital tier
    /// hands to the projection step).
    pub fn convert(&self, x: f64) -> f64 {
        self.convert_code(x) as f64 * self.config.step()
    }

    /// Converts a whole similarity vector.
    pub fn convert_vector(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.convert(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    #[test]
    fn four_bit_codes_span_pm7() {
        let adc = SarAdc::ideal(AdcConfig::paper_4bit(256.0));
        assert_eq!(adc.config().max_code(), 7);
        assert_eq!(adc.convert_code(256.0), 7);
        assert_eq!(adc.convert_code(-256.0), -7);
        assert_eq!(adc.convert_code(1e9), 7, "saturation");
        assert_eq!(adc.convert_code(0.0), 0);
    }

    #[test]
    fn small_inputs_collapse_to_zero() {
        // The sparsification mechanism: similarities below half an LSB
        // vanish. For D=1024 at 4 bits, LSB ≈ 146 — random-codeword
        // similarities (~±32) are crushed.
        let adc = SarAdc::ideal(AdcConfig::paper_4bit(1024.0));
        assert_eq!(adc.convert(32.0), 0.0);
        assert_eq!(adc.convert(-70.0), 0.0);
        assert!(adc.convert(1024.0) > 0.0);
    }

    #[test]
    fn eight_bit_resolves_finer() {
        let a4 = SarAdc::ideal(AdcConfig::paper_4bit(1024.0));
        let a8 = SarAdc::ideal(AdcConfig::paper_8bit(1024.0));
        assert!(a8.config().step() < a4.config().step());
        // 8-bit sees a small similarity that 4-bit zeroes.
        assert_eq!(a4.convert(40.0), 0.0);
        assert!(a8.convert(40.0) > 0.0);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let adc = SarAdc::ideal(AdcConfig::paper_4bit(128.0));
        let step = adc.config().step();
        for i in -128..=128 {
            let x = i as f64;
            let err = (adc.convert(x) - x).abs();
            assert!(err <= step / 2.0 + 1e-9, "x={x} err={err}");
        }
    }

    #[test]
    fn offset_shifts_codes() {
        let cfg = AdcConfig {
            bits: 4,
            full_scale: 64.0,
            offset_sigma: 20.0,
            gain_sigma: 0.0,
        };
        let mut rng = rng_from_seed(80);
        // With a large offset sigma, at least one of a few instances maps
        // zero input to a non-zero code.
        let any_shifted = (0..8).any(|_| SarAdc::new(cfg, &mut rng).convert_code(0.0) != 0);
        assert!(any_shifted);
    }

    #[test]
    fn conversion_energy_grows_with_bits() {
        let e4 = AdcConfig::paper_4bit(1.0).conversion_energy_j();
        let e8 = AdcConfig::paper_8bit(1.0).conversion_energy_j();
        assert!(e8 > e4);
        assert_eq!(AdcConfig::paper_4bit(1.0).conversion_cycles(), 4);
        assert_eq!(AdcConfig::paper_8bit(1.0).conversion_cycles(), 8);
    }

    #[test]
    #[should_panic(expected = "full scale must be positive")]
    fn zero_full_scale_rejected() {
        let _ = SarAdc::ideal(AdcConfig::paper_4bit(0.0));
    }
}
