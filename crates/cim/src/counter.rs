//! The −1's counter + adder: digital bipolar accumulation.
//!
//! Existing VSA CIM arrays map a bipolar element to a single bit, which
//! cannot accumulate positive *and* negative contributions. H3DFact's
//! arrays pair the bit-line popcount with a specialized "−1's counter"
//! (Sec. III-A, after the ISSCC'22/VLSI'23 macros): with `p` matching
//! (+1·+1 or −1·−1) positions out of `n`, the true bipolar dot product is
//! `p − (n − p) = 2p − n`. This module implements that digital datapath and
//! the exact SRAM-CIM MVM used by the fully-digital 2D baseline.

use serde::{Deserialize, Serialize};

use hdc::{BipolarVector, Codebook};

/// Digital bipolar accumulator built from an XNOR-popcount front end and
/// the −1's counter correction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BipolarCounter {
    ops: u64,
}

impl BipolarCounter {
    /// Creates a counter unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of dot products computed so far (for energy roll-ups).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Exact bipolar dot product via XNOR-popcount + −1's correction.
    ///
    /// # Panics
    ///
    /// Panics if the operand dimensions differ.
    pub fn dot(&mut self, a: &BipolarVector, b: &BipolarVector) -> i64 {
        self.ops += 1;
        // Matching positions p = D − hamming; dot = 2p − D.
        let d = a.dim() as i64;
        let p = d - a.hamming(b) as i64;
        2 * p - d
    }

    /// Exact digital similarity MVM `a = Xᵀ q` — the SRAM-CIM path of the
    /// fully-digital 2D baseline (deterministic, hence subject to the limit
    /// cycles the paper's Table III accuracy column shows).
    pub fn mvm(&mut self, book: &Codebook, query: &BipolarVector) -> Vec<i64> {
        self.ops += book.len() as u64;
        book.similarities(query)
    }

    /// Allocation-free [`BipolarCounter::mvm`] writing the `M` exact dot
    /// products into `out` as `f64` (values are exact integers), through
    /// the packed popcount kernel.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != book.len()` or dimensions differ.
    pub fn mvm_into(&mut self, book: &Codebook, query: &BipolarVector, out: &mut [f64]) {
        self.ops += book.len() as u64;
        book.similarities_into(query, out);
    }
}

/// Counts the number of `−1` elements in a vector (the raw output of the
/// hardware counter before the adder correction).
pub fn count_minus_ones(v: &BipolarVector) -> usize {
    v.dim() - v.count_positive()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    #[test]
    fn dot_matches_reference() {
        let mut rng = rng_from_seed(90);
        let a = BipolarVector::random(300, &mut rng);
        let b = BipolarVector::random(300, &mut rng);
        let mut c = BipolarCounter::new();
        assert_eq!(c.dot(&a, &b), a.dot(&b));
        assert_eq!(c.ops(), 1);
    }

    #[test]
    fn mvm_matches_codebook_similarities() {
        let mut rng = rng_from_seed(91);
        let book = Codebook::random(16, 256, &mut rng);
        let q = BipolarVector::random(256, &mut rng);
        let mut c = BipolarCounter::new();
        assert_eq!(c.mvm(&book, &q), book.similarities(&q));
        assert_eq!(c.ops(), 16);
    }

    #[test]
    fn minus_ones_complement() {
        let v = BipolarVector::from_signs(&[1, -1, -1, 1, -1]);
        assert_eq!(count_minus_ones(&v), 3);
        assert_eq!(count_minus_ones(&v.negated()), 2);
    }
}
