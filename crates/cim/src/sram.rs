//! SRAM near-memory buffering.
//!
//! Tier-1 of H3DFact hosts a digital SRAM buffer that makes batch
//! factorization legal under the single-active-RRAM-tier constraint
//! (Sec. IV-A): while tier-3 is still computing similarities for later
//! batch elements, earlier elements' ADC outputs wait in SRAM instead of
//! being pushed to tier-2. This module models that buffer — capacity,
//! occupancy, overflow — plus per-access energy for the roll-up.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use crate::tech::TechNode;

/// Error returned when a write would exceed the buffer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferOverflow {
    requested_bits: u64,
    free_bits: u64,
}

impl BufferOverflow {
    /// Bits the caller attempted to store.
    pub fn requested_bits(&self) -> u64 {
        self.requested_bits
    }

    /// Bits that were still free.
    pub fn free_bits(&self) -> u64 {
        self.free_bits
    }
}

impl fmt::Display for BufferOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sram buffer overflow: requested {} bits with {} free",
            self.requested_bits, self.free_bits
        )
    }
}

impl Error for BufferOverflow {}

/// A near-memory SRAM buffer with occupancy tracking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramBuffer {
    capacity_bits: u64,
    used_bits: u64,
    node: TechNode,
    reads: u64,
    writes: u64,
    peak_bits: u64,
}

impl SramBuffer {
    /// Creates a buffer of `capacity_bits` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bits == 0`.
    pub fn new(capacity_bits: u64, node: TechNode) -> Self {
        assert!(capacity_bits > 0, "buffer capacity must be positive");
        Self {
            capacity_bits,
            used_bits: 0,
            node,
            reads: 0,
            writes: 0,
            peak_bits: 0,
        }
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Currently occupied bits.
    pub fn used_bits(&self) -> u64 {
        self.used_bits
    }

    /// High-water mark of occupancy.
    pub fn peak_bits(&self) -> u64 {
        self.peak_bits
    }

    /// Free bits remaining.
    pub fn free_bits(&self) -> u64 {
        self.capacity_bits - self.used_bits
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.used_bits as f64 / self.capacity_bits as f64
    }

    /// Stores `bits` (one batch element's quantized similarity record).
    ///
    /// # Errors
    ///
    /// Returns [`BufferOverflow`] when the write does not fit; occupancy is
    /// unchanged on error.
    pub fn push(&mut self, bits: u64) -> Result<(), BufferOverflow> {
        if bits > self.free_bits() {
            return Err(BufferOverflow {
                requested_bits: bits,
                free_bits: self.free_bits(),
            });
        }
        self.used_bits += bits;
        self.peak_bits = self.peak_bits.max(self.used_bits);
        self.writes += 1;
        Ok(())
    }

    /// Releases `bits` after they are consumed downstream.
    ///
    /// # Panics
    ///
    /// Panics if more bits are popped than are held (a scheduling bug).
    pub fn pop(&mut self, bits: u64) {
        assert!(
            bits <= self.used_bits,
            "popped {} bits with only {} held",
            bits,
            self.used_bits
        );
        self.used_bits -= bits;
        self.reads += 1;
    }

    /// Number of push operations.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of pop operations.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Per-bit dynamic access energy on this buffer's node, joules
    /// (≈ 1 fJ/bit at 40 nm, scaled by node energy factor).
    pub fn access_energy_per_bit_j(&self) -> f64 {
        1e-15 * self.node.energy_scale_vs_40()
    }

    /// Silicon area of the buffer in mm², from bit-cell density per node
    /// (≈ 0.30 Mb/mm² ⁻¹… expressed as µm²/bit: 0.60 at 40 nm scaled by
    /// node area factor, including periphery overhead).
    pub fn area_mm2(&self) -> f64 {
        let um2_per_bit = 0.60 * self.node.area_scale_vs_40();
        self.capacity_bits as f64 * um2_per_bit * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_tracks_occupancy() {
        let mut b = SramBuffer::new(1024, TechNode::N16);
        assert_eq!(b.free_bits(), 1024);
        b.push(512).unwrap();
        b.push(256).unwrap();
        assert_eq!(b.used_bits(), 768);
        assert_eq!(b.peak_bits(), 768);
        b.pop(512);
        assert_eq!(b.used_bits(), 256);
        assert_eq!(b.peak_bits(), 768, "peak is sticky");
        assert!((b.occupancy() - 0.25).abs() < 1e-12);
        assert_eq!(b.writes(), 2);
        assert_eq!(b.reads(), 1);
    }

    #[test]
    fn overflow_is_reported_and_harmless() {
        let mut b = SramBuffer::new(100, TechNode::N16);
        b.push(90).unwrap();
        let err = b.push(20).unwrap_err();
        assert_eq!(err.requested_bits(), 20);
        assert_eq!(err.free_bits(), 10);
        assert_eq!(b.used_bits(), 90, "failed push must not mutate");
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    #[should_panic(expected = "popped")]
    fn over_pop_panics() {
        let mut b = SramBuffer::new(100, TechNode::N16);
        b.pop(1);
    }

    #[test]
    fn advanced_node_is_cheaper_and_smaller() {
        let b40 = SramBuffer::new(1 << 20, TechNode::N40);
        let b16 = SramBuffer::new(1 << 20, TechNode::N16);
        assert!(b16.access_energy_per_bit_j() < b40.access_energy_per_bit_j());
        assert!(b16.area_mm2() < b40.area_mm2());
    }
}
