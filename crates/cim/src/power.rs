//! Power modes and word-line gating.
//!
//! H3DFact shares one set of RRAM peripherals between two RRAM tiers through
//! vertical interconnects, so *only one RRAM tier may drive current at a
//! time* (Sec. IV-A). Each tier's word-line level shifters are power-gated;
//! a shut-down tier must contribute exactly zero column current. The types
//! here make that constraint checkable: the crossbar refuses to compute
//! unless its domain is [`PowerMode::Active`].

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Operating mode of a power domain (an RRAM tier's WL level-shifter bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PowerMode {
    /// Fully powered; MVM allowed.
    #[default]
    Active,
    /// Clocks gated, state retained, no compute.
    Standby,
    /// Full shutdown: WL level shifters off, cells contribute no current.
    Shutdown,
}

impl fmt::Display for PowerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerMode::Active => write!(f, "active"),
            PowerMode::Standby => write!(f, "standby"),
            PowerMode::Shutdown => write!(f, "shutdown"),
        }
    }
}

/// Error returned when compute is requested from a non-active domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerStateError {
    mode: PowerMode,
}

impl PowerStateError {
    /// Creates the error for the observed mode.
    pub fn new(mode: PowerMode) -> Self {
        Self { mode }
    }

    /// The mode the domain was in.
    pub fn mode(&self) -> PowerMode {
        self.mode
    }
}

impl fmt::Display for PowerStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compute requested while power domain is {}", self.mode)
    }
}

impl Error for PowerStateError {}

/// A power domain with simple leakage bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerDomain {
    mode: PowerMode,
    /// Leakage power when active, watts.
    pub leakage_active_w: f64,
    /// Leakage power in standby, watts.
    pub leakage_standby_w: f64,
}

impl PowerDomain {
    /// Creates an active domain with the given leakage figures.
    pub fn new(leakage_active_w: f64, leakage_standby_w: f64) -> Self {
        Self {
            mode: PowerMode::Active,
            leakage_active_w,
            leakage_standby_w,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> PowerMode {
        self.mode
    }

    /// Transitions to `mode`.
    pub fn set_mode(&mut self, mode: PowerMode) {
        self.mode = mode;
    }

    /// Leakage power in the current mode, watts.
    pub fn leakage_w(&self) -> f64 {
        match self.mode {
            PowerMode::Active => self.leakage_active_w,
            PowerMode::Standby => self.leakage_standby_w,
            PowerMode::Shutdown => 0.0,
        }
    }

    /// Ensures compute is legal in the current mode.
    ///
    /// # Errors
    ///
    /// Returns [`PowerStateError`] unless the domain is active.
    pub fn ensure_active(&self) -> Result<(), PowerStateError> {
        if self.mode == PowerMode::Active {
            Ok(())
        } else {
            Err(PowerStateError::new(self.mode))
        }
    }
}

impl Default for PowerDomain {
    fn default() -> Self {
        Self::new(0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_has_zero_leakage() {
        let mut d = PowerDomain::new(1e-3, 1e-4);
        assert_eq!(d.leakage_w(), 1e-3);
        d.set_mode(PowerMode::Standby);
        assert_eq!(d.leakage_w(), 1e-4);
        d.set_mode(PowerMode::Shutdown);
        assert_eq!(d.leakage_w(), 0.0);
    }

    #[test]
    fn ensure_active_guards_compute() {
        let mut d = PowerDomain::default();
        assert!(d.ensure_active().is_ok());
        d.set_mode(PowerMode::Shutdown);
        let err = d.ensure_active().unwrap_err();
        assert_eq!(err.mode(), PowerMode::Shutdown);
        assert!(err.to_string().contains("shutdown"));
    }
}
