//! Single-device RRAM model: conductance states, programming variability,
//! read noise, and temperature-dependent retention.
//!
//! The crossbar fast path (`crossbar::Fidelity::Column`) aggregates these
//! effects statistically; this module is the ground-truth per-device model
//! used by the cell-fidelity path and by the device-level tests.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::noise::NoiseSpec;
use hdc::stats::{log_normal, normal};

/// Static device parameters for an RRAM technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RramDeviceParams {
    /// Low-resistance-state conductance in siemens.
    pub g_lrs: f64,
    /// High-resistance-state conductance in siemens.
    pub g_hrs: f64,
    /// SET programming voltage (volts) — needs the legacy node.
    pub v_set: f64,
    /// RESET programming voltage (volts).
    pub v_reset: f64,
    /// Read voltage (volts), kept low to avoid disturb.
    pub v_read: f64,
    /// Energy per program (SET or RESET) pulse in joules.
    pub program_energy_j: f64,
    /// Retention knee: above this temperature (°C) retention degrades
    /// rapidly (Fang et al., EDL 2010 report HfOx instability >100 °C).
    pub retention_limit_c: f64,
}

impl RramDeviceParams {
    /// Parameters representative of the 40 nm HfOx macros the paper cites.
    pub fn hfox_40nm() -> Self {
        Self {
            g_lrs: 50e-6,
            g_hrs: 2.5e-6,
            v_set: 2.4,
            v_reset: 2.6,
            v_read: 0.2,
            program_energy_j: 5e-12,
            retention_limit_c: 100.0,
        }
    }

    /// On/off conductance ratio.
    pub fn on_off_ratio(&self) -> f64 {
        self.g_lrs / self.g_hrs
    }

    /// Differential conductance window `G_LRS − G_HRS`.
    pub fn window(&self) -> f64 {
        self.g_lrs - self.g_hrs
    }
}

impl Default for RramDeviceParams {
    fn default() -> Self {
        Self::hfox_40nm()
    }
}

/// Target logical state of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RramState {
    /// Low-resistance (SET) state.
    Lrs,
    /// High-resistance (RESET) state.
    Hrs,
}

/// One programmed RRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RramCell {
    state: RramState,
    /// Actual programmed conductance (siemens), including variability.
    g_programmed: f64,
    /// True if the device failed stuck-at-HRS.
    stuck: bool,
}

impl RramCell {
    /// Programs a cell to `state`, drawing log-normal programming
    /// variability and a stuck-at fault per `noise`.
    pub fn program<R: Rng + ?Sized>(
        state: RramState,
        params: &RramDeviceParams,
        noise: &NoiseSpec,
        rng: &mut R,
    ) -> Self {
        let stuck = noise.stuck_at_rate > 0.0 && rng.gen::<f64>() < noise.stuck_at_rate;
        let target = match state {
            RramState::Lrs => params.g_lrs,
            RramState::Hrs => params.g_hrs,
        };
        let g_programmed = if stuck {
            params.g_hrs
        } else if noise.programming_sigma > 0.0 {
            // Log-normal multiplicative variability around the target level.
            target * log_normal(0.0, noise.programming_sigma, rng)
        } else {
            target
        };
        Self {
            state,
            g_programmed,
            stuck,
        }
    }

    /// The programmed logical state.
    pub fn state(&self) -> RramState {
        self.state
    }

    /// Whether the device failed stuck-at-HRS.
    pub fn is_stuck(&self) -> bool {
        self.stuck
    }

    /// Programmed conductance without read noise (siemens).
    pub fn conductance(&self) -> f64 {
        self.g_programmed
    }

    /// One read access: programmed conductance plus fresh read noise.
    pub fn read<R: Rng + ?Sized>(
        &self,
        params: &RramDeviceParams,
        noise: &NoiseSpec,
        rng: &mut R,
    ) -> f64 {
        let sigma = noise.read_sigma * params.window();
        if sigma > 0.0 {
            (self.g_programmed + normal(0.0, sigma, rng)).max(0.0)
        } else {
            self.g_programmed
        }
    }

    /// Conductance after `hours` at `temp_c`, applying an Arrhenius-style
    /// drift toward HRS once the retention limit is exceeded. Below the
    /// limit drift is negligible on experiment timescales.
    pub fn after_retention(&self, params: &RramDeviceParams, temp_c: f64, hours: f64) -> f64 {
        if temp_c <= params.retention_limit_c || self.state == RramState::Hrs {
            return self.g_programmed;
        }
        // Exponential decay of the window with a rate doubling every 10 °C
        // above the limit.
        let overshoot = (temp_c - params.retention_limit_c) / 10.0;
        let rate_per_hour = 0.01 * 2f64.powf(overshoot);
        let window = self.g_programmed - params.g_hrs;
        params.g_hrs + window * (-rate_per_hour * hours).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;
    use hdc::stats::Summary;

    #[test]
    fn on_off_ratio_is_large() {
        let p = RramDeviceParams::hfox_40nm();
        assert!(p.on_off_ratio() > 10.0);
        assert!(p.window() > 0.0);
    }

    #[test]
    fn ideal_programming_hits_target() {
        let p = RramDeviceParams::hfox_40nm();
        let mut rng = rng_from_seed(50);
        let c = RramCell::program(RramState::Lrs, &p, &NoiseSpec::ideal(), &mut rng);
        assert_eq!(c.conductance(), p.g_lrs);
        assert!(!c.is_stuck());
        assert_eq!(c.read(&p, &NoiseSpec::ideal(), &mut rng), p.g_lrs);
    }

    #[test]
    fn programming_variability_has_expected_spread() {
        let p = RramDeviceParams::hfox_40nm();
        let n = NoiseSpec::chip_40nm();
        let mut rng = rng_from_seed(51);
        let s: Summary = (0..5000)
            .map(|_| {
                RramCell::program(RramState::Lrs, &p, &n, &mut rng)
                    .conductance()
                    .ln()
            })
            .collect();
        // ln(G) ~ N(ln g_lrs, programming_sigma²) for non-stuck cells;
        // the 0.1 % stuck cells barely move the aggregate.
        assert!((s.mean() - p.g_lrs.ln()).abs() < 0.05);
        assert!((s.std_dev() - n.programming_sigma).abs() < 0.05);
    }

    #[test]
    fn stuck_cells_land_at_hrs() {
        let p = RramDeviceParams::hfox_40nm();
        let mut n = NoiseSpec::chip_40nm();
        n.stuck_at_rate = 1.0;
        let mut rng = rng_from_seed(52);
        let c = RramCell::program(RramState::Lrs, &p, &n, &mut rng);
        assert!(c.is_stuck());
        assert_eq!(c.conductance(), p.g_hrs);
    }

    #[test]
    fn read_noise_is_zero_mean() {
        let p = RramDeviceParams::hfox_40nm();
        let n = NoiseSpec::chip_40nm();
        let mut rng = rng_from_seed(53);
        let cell = RramCell::program(RramState::Lrs, &p, &NoiseSpec::ideal(), &mut rng);
        let s: Summary = (0..5000).map(|_| cell.read(&p, &n, &mut rng)).collect();
        assert!((s.mean() - p.g_lrs).abs() < 0.01 * p.g_lrs);
        assert!(s.std_dev() > 0.0);
    }

    #[test]
    fn retention_safe_below_limit() {
        let p = RramDeviceParams::hfox_40nm();
        let mut rng = rng_from_seed(54);
        let cell = RramCell::program(RramState::Lrs, &p, &NoiseSpec::ideal(), &mut rng);
        // The paper's thermal analysis lands at ~48 °C — far below the knee.
        assert_eq!(cell.after_retention(&p, 47.8, 1000.0), p.g_lrs);
    }

    #[test]
    fn retention_decays_above_limit() {
        let p = RramDeviceParams::hfox_40nm();
        let mut rng = rng_from_seed(55);
        let cell = RramCell::program(RramState::Lrs, &p, &NoiseSpec::ideal(), &mut rng);
        let g_hot = cell.after_retention(&p, 130.0, 100.0);
        assert!(g_hot < p.g_lrs);
        assert!(g_hot >= p.g_hrs);
        // Hotter decays faster.
        assert!(cell.after_retention(&p, 140.0, 100.0) < g_hot);
    }
}
