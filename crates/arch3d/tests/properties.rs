//! Property-based tests for the architecture models.

use arch3d::design::{build_report_with, DesignVariant};
use arch3d::floorplan::{digital_tier_floorplan, rram_tier_floorplan};
use arch3d::ppa::ArchParams;
use arch3d::schedule::{IterationSchedule, ScheduleConfig};
use arch3d::tsv::TsvSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedule_monotone_in_batch(factors in 1usize..=6, b in 1usize..64) {
        let s1 = IterationSchedule::compute(&ScheduleConfig::paper(factors, b));
        let s2 = IterationSchedule::compute(&ScheduleConfig::paper(factors, b + 1));
        prop_assert!(s2.cycles > s1.cycles, "more batch, more cycles");
        // Buffered never beats physics: at least the MVM legs remain.
        prop_assert!(s1.cycles <= s1.cycles_unbuffered);
        // Per-element latency never increases with batch.
        prop_assert!(
            s2.cycles_per_element(b + 1) <= s1.cycles_per_element(b) + 1e-9
        );
    }

    #[test]
    fn schedule_switches_bounded(factors in 1usize..=6, b in 1usize..200) {
        let s = IterationSchedule::compute(&ScheduleConfig::paper(factors, b));
        prop_assert!(s.tier_switches >= 2 * factors as u64);
        prop_assert!(s.tier_switches <= s.tier_switches_unbuffered);
        prop_assert!(s.buffer_peak_bits <= 65_536);
    }

    #[test]
    fn reports_scale_sanely(rows in prop_oneof![Just(128usize), Just(256), Just(512)],
                            factors in 2usize..=8) {
        let arch = ArchParams { rows, cols: 256, factors, adc_bits: 4 };
        let r = build_report_with(DesignVariant::H3dThreeTier, arch);
        prop_assert!(r.total_area_mm2 > 0.0);
        prop_assert!(r.throughput_tops > 0.0);
        prop_assert!(r.energy_eff_tops_w > 10.0 && r.energy_eff_tops_w < 200.0);
        // More factors → more area, more ops.
        let bigger = ArchParams { factors: factors + 1, ..arch };
        let rb = build_report_with(DesignVariant::H3dThreeTier, bigger);
        prop_assert!(rb.total_area_mm2 > r.total_area_mm2);
        prop_assert!(rb.ops_per_iter > r.ops_per_iter);
    }

    #[test]
    fn tsv_capacitance_monotone_in_height(h in 1.0f64..50.0) {
        let a = TsvSpec { height_um: h, ..TsvSpec::paper() };
        let b = TsvSpec { height_um: h + 1.0, ..TsvSpec::paper() };
        prop_assert!(b.capacitance_f() > a.capacitance_f());
        prop_assert!(b.resistance_ohm() > a.resistance_ohm());
    }

    #[test]
    fn tsv_derate_in_unit_interval(c_path in 1e-15f64..1e-12) {
        let d = TsvSpec::paper().frequency_derate(c_path);
        prop_assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn floorplans_valid_and_power_conserving(side in 0.05f64..1.0, power in 0.001f64..0.5,
                                             nx in 4usize..24, ny in 4usize..24) {
        for fp in [
            rram_tier_floorplan("r", side, power),
            digital_tier_floorplan("d", side, power),
        ] {
            prop_assert!(fp.validate().is_ok());
            let total: f64 = fp.power_grid(nx, ny).iter().sum();
            prop_assert!((total - power).abs() < 1e-9 * power.max(1.0));
        }
    }
}
