//! NeuroSim-substitute component library: per-component silicon area and
//! per-operation energy, parameterized by technology node.
//!
//! The paper estimates component sizes with the calibrated NeuroSim
//! framework and the TSMC standard-cell library — neither of which is
//! reproducible here — so this module encodes an *analytical library whose
//! constants are calibrated to land on the paper's published aggregates*
//! (Table III totals: 0.114 / 0.544 / 0.091 mm², ~1.5 TOPS, 50–61 TOPS/W)
//! while every inter-design *ratio* emerges from real architectural
//! differences (node scaling, tier stacking, TSV overheads). Each constant
//! is annotated with its physical rationale.
//!
//! One deliberately explicit modeling choice: the monolithic 2D hybrid
//! design carries an **RRAM-integration penalty** on its non-RRAM blocks.
//! Embedding back-end-of-line RRAM in a 40 nm logic process restricts the
//! metal stack over the arrays and forces pitch-relaxed periphery; the
//! paper alludes to this ("limitations in current RRAM fabrication
//! technology", Sec. V-B). Without the penalty no component breakdown can
//! reach the paper's 0.544 mm² for iso-capacity resources.

use cim::tech::TechNode;
use serde::{Deserialize, Serialize};

/// A physical building block of the designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// One 256×256 RRAM crossbar subarray (cells + local bias/isolation).
    RramSubarray,
    /// Per-RRAM-tier overhead: WL level shifters, programming switches,
    /// decoupling (Fig. 2a / Fig. 4a).
    RramTierOverhead,
    /// Per-subarray peripheral logic: row decoders, read/write drivers.
    RramPeripheral,
    /// One column-parallel SAR ADC (4-bit).
    SarAdc4,
    /// One column-parallel SAR ADC (8-bit) — the Fig. 6a ablation.
    SarAdc8,
    /// One 256×256 digital SRAM-CIM subarray (the fully-SRAM baseline).
    SramCimSubarray,
    /// The 64 kb tier-1 SRAM batch buffer.
    SramBuffer64kb,
    /// The 256-lane XNOR unbinding bank.
    XnorBank,
    /// Controller, clocking, and miscellaneous glue.
    Control,
}

/// Area/energy library with node scaling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentLibrary {
    /// Area multiplier applied to non-RRAM blocks co-integrated with RRAM
    /// on a monolithic legacy-node die (1.0 = no penalty).
    pub rram_integration_penalty: f64,
}

impl ComponentLibrary {
    /// Library for a heterogeneous (stacked) design: no integration
    /// penalty, every tier uses its own optimal process.
    pub fn heterogeneous() -> Self {
        Self {
            rram_integration_penalty: 1.0,
        }
    }

    /// Library for the monolithic 2D hybrid design (RRAM + digital on one
    /// 40 nm die). The 3.0× penalty on non-RRAM blocks is calibrated so
    /// that iso-capacity resources reproduce the paper's 0.544 mm².
    pub fn monolithic_with_rram() -> Self {
        Self {
            rram_integration_penalty: 3.0,
        }
    }

    /// Silicon area of one instance in mm².
    ///
    /// Base (40 nm) figures; logic-like blocks scale with
    /// [`TechNode::area_scale_vs_40`]. RRAM subarrays exist only at 40 nm
    /// (programming voltage requires the legacy node) and never scale.
    pub fn area_mm2(&self, kind: ComponentKind, node: TechNode) -> f64 {
        let logic_scale = node.area_scale_vs_40();
        let penalty = |a: f64| {
            if node == TechNode::N40 {
                a * self.rram_integration_penalty
            } else {
                a
            }
        };
        match kind {
            // 64 kb of 1T1R at ~25 F² effective (incl. local bias): fixed
            // 40 nm.
            ComponentKind::RramSubarray => 0.0065,
            // Level shifters + programming switches for one tier of four
            // subarrays (thick-oxide devices, 40 nm only).
            ComponentKind::RramTierOverhead => 0.004,
            // Decoders + RD/WR drivers for one subarray; logic-like.
            ComponentKind::RramPeripheral => penalty(0.0029 * logic_scale),
            // Column SAR ADC: capacitive DAC + comparator + logic. 80 µm²
            // at 40 nm, scaling with logic (cap array shrinks with the
            // lower full-scale swing at 16 nm).
            ComponentKind::SarAdc4 => penalty(80e-6 * logic_scale),
            // 8-bit SAR: ~3.4× the 4-bit (cap array doubles per bit but
            // comparator/logic amortize).
            ComponentKind::SarAdc8 => penalty(270e-6 * logic_scale),
            // 64 kb digital CIM subarray: bitcells + adder tree.
            ComponentKind::SramCimSubarray => 0.0126 * logic_scale / 0.20,
            // 64 kb buffer: 0.60 µm²/bit at 40 nm.
            ComponentKind::SramBuffer64kb => penalty(65_536.0 * 0.60e-6 * logic_scale),
            ComponentKind::XnorBank => penalty(0.0004 * logic_scale / 0.20),
            ComponentKind::Control => penalty(0.0017 * logic_scale / 0.20),
        }
    }

    /// Energy of one analog RRAM MAC (one cell-row contribution to one
    /// column current), joules. Fixed at the 40 nm RRAM tier regardless of
    /// peripheral node: dominated by cell read current × read voltage ×
    /// integration time.
    pub fn e_mac_rram_j(&self) -> f64 {
        28e-15
    }

    /// Energy of one digital SRAM-CIM MAC at `node`, joules (XNOR +
    /// popcount-adder slice + bit-line access).
    pub fn e_mac_sram_digital_j(&self, node: TechNode) -> f64 {
        // 36 fJ at 16 nm, scaled back to 40 nm by the energy factor.
        36e-15 * node.energy_scale_vs_40() / TechNode::N16.energy_scale_vs_40()
    }

    /// Energy of one `bits`-bit SAR conversion at `node`, joules.
    pub fn e_adc_j(&self, bits: u8, node: TechNode) -> f64 {
        let b = bits as f64;
        // 16 nm-class SAR rule of thumb, scaled by node energy.
        (50e-15 * b + 2e-15 * 2f64.powf(b)) * node.energy_scale_vs_40()
            / TechNode::N16.energy_scale_vs_40()
    }

    /// Energy to drive one word line for one MVM at `node`, joules.
    pub fn e_drive_row_j(&self, node: TechNode) -> f64 {
        500e-15 * node.energy_scale_vs_40()
    }

    /// Energy of one XNOR gate evaluation at `node`, joules.
    pub fn e_xnor_gate_j(&self, node: TechNode) -> f64 {
        1e-15 * node.energy_scale_vs_40()
    }

    /// Energy per SRAM buffer bit access at `node`, joules.
    pub fn e_sram_bit_j(&self, node: TechNode) -> f64 {
        1e-15 * node.energy_scale_vs_40()
    }

    /// Energy of one 1-bit column sense (projection sign readout), joules.
    pub fn e_sense_j(&self, node: TechNode) -> f64 {
        10e-15 * node.energy_scale_vs_40()
    }

    /// Control/clock overhead energy per cycle, joules.
    pub fn e_control_cycle_j(&self, node: TechNode) -> f64 {
        2e-12 * node.energy_scale_vs_40()
    }
}

impl Default for ComponentLibrary {
    fn default() -> Self {
        Self::heterogeneous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rram_subarray_is_node_independent() {
        let lib = ComponentLibrary::heterogeneous();
        assert_eq!(
            lib.area_mm2(ComponentKind::RramSubarray, TechNode::N40),
            lib.area_mm2(ComponentKind::RramSubarray, TechNode::N16),
        );
    }

    #[test]
    fn logic_shrinks_at_16nm() {
        let lib = ComponentLibrary::heterogeneous();
        for kind in [
            ComponentKind::SarAdc4,
            ComponentKind::SramCimSubarray,
            ComponentKind::XnorBank,
            ComponentKind::Control,
            ComponentKind::SramBuffer64kb,
        ] {
            assert!(
                lib.area_mm2(kind, TechNode::N16) < lib.area_mm2(kind, TechNode::N40),
                "{kind:?} did not shrink"
            );
        }
    }

    #[test]
    fn integration_penalty_applies_only_at_40nm() {
        let het = ComponentLibrary::heterogeneous();
        let mono = ComponentLibrary::monolithic_with_rram();
        assert!(
            mono.area_mm2(ComponentKind::SarAdc4, TechNode::N40)
                > het.area_mm2(ComponentKind::SarAdc4, TechNode::N40)
        );
        assert_eq!(
            mono.area_mm2(ComponentKind::SarAdc4, TechNode::N16),
            het.area_mm2(ComponentKind::SarAdc4, TechNode::N16)
        );
    }

    #[test]
    fn adc8_costs_more_than_adc4() {
        let lib = ComponentLibrary::heterogeneous();
        assert!(
            lib.area_mm2(ComponentKind::SarAdc8, TechNode::N16)
                > lib.area_mm2(ComponentKind::SarAdc4, TechNode::N16)
        );
        assert!(lib.e_adc_j(8, TechNode::N16) > lib.e_adc_j(4, TechNode::N16));
    }

    #[test]
    fn energies_scale_with_node() {
        let lib = ComponentLibrary::heterogeneous();
        assert!(lib.e_mac_sram_digital_j(TechNode::N40) > lib.e_mac_sram_digital_j(TechNode::N16));
        assert!(lib.e_adc_j(4, TechNode::N40) > lib.e_adc_j(4, TechNode::N16));
        assert!(lib.e_drive_row_j(TechNode::N40) > lib.e_drive_row_j(TechNode::N16));
    }

    #[test]
    fn analog_mac_cheaper_than_digital_at_legacy_node() {
        let lib = ComponentLibrary::heterogeneous();
        // The CIM premise: analog accumulation beats digital MACs at 40 nm.
        assert!(lib.e_mac_rram_j() < lib.e_mac_sram_digital_j(TechNode::N40));
    }
}
