//! Cycle-level iteration schedule with SRAM-buffered batch pipelining.
//!
//! The schedule models one resonator iteration on the three-tier stack.
//! Under the single-active-RRAM-tier constraint, similarity (tier-3) and
//! projection (tier-2) can never overlap, so the only way to amortize the
//! tier activation switches is to *batch*: run the similarity phase for all
//! `B` batch elements while their quantized outputs accumulate in the
//! tier-1 SRAM, switch once, then run all `B` projections (paper
//! Sec. IV-A). Without the buffer every element pays two switches.

use serde::{Deserialize, Serialize};

use crate::mapping::{KernelPhase, TierRole, TierScheduler};
use cim::sram::SramBuffer;
use cim::tech::TechNode;

/// Per-phase latencies in clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseLatencies {
    /// XNOR unbinding of one estimate set (256-lane datapath).
    pub unbind: u64,
    /// WL drive + analog settling of one similarity MVM.
    pub similarity_mvm: u64,
    /// SAR conversion (column-parallel, one per bit plus margin).
    pub adc: u64,
    /// Digital transfer of quantized similarities between tiers.
    pub transfer: u64,
    /// Projection MVM: bit-serial multi-bit WL drive + settle + sign sense.
    pub projection_mvm: u64,
    /// Estimate writeback.
    pub writeback: u64,
    /// RRAM tier activation switch (WL level-shifter power-up + settle).
    pub tier_switch: u64,
    /// Per-iteration control overhead.
    pub control: u64,
}

impl PhaseLatencies {
    /// Latencies calibrated for the 200 MHz designs of Table III (analog
    /// settling ≈ 40–60 ns, 4-bit column-parallel SAR, bit-serial
    /// projection drive), at the reference 256-row subarray.
    pub fn paper_default() -> Self {
        Self {
            unbind: 2,
            similarity_mvm: 12,
            adc: 4,
            transfer: 2,
            projection_mvm: 18,
            writeback: 2,
            tier_switch: 6,
            control: 8,
        }
    }

    /// Reference latencies scaled for a `rows`-row subarray: the analog
    /// settle time of an MVM grows with the bit-line RC (∝ rows), as does
    /// the 256-lane XNOR datapath occupancy; ADC, transfers and switching
    /// do not.
    pub fn for_rows(rows: usize) -> Self {
        let base = Self::paper_default();
        let scale = |c: u64| ((c as f64) * rows as f64 / 256.0).ceil().max(1.0) as u64;
        Self {
            unbind: scale(base.unbind),
            similarity_mvm: scale(base.similarity_mvm),
            adc: base.adc,
            transfer: base.transfer,
            projection_mvm: scale(base.projection_mvm),
            writeback: base.writeback,
            tier_switch: base.tier_switch,
            control: base.control,
        }
    }
}

impl Default for PhaseLatencies {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Schedule configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Number of factors `F`.
    pub factors: usize,
    /// Batch size `B`.
    pub batch: usize,
    /// Bits buffered per batch element per factor (`M × adc_bits`).
    pub buffer_bits_per_element: u64,
    /// Tier-1 SRAM buffer capacity in bits.
    pub buffer_capacity_bits: u64,
    /// Phase latencies.
    pub latencies: PhaseLatencies,
}

impl ScheduleConfig {
    /// The paper's operating point: `F` factors, batch `B`, `M = 256`
    /// columns at 4-bit ADC, 64 kb tier-1 buffer.
    pub fn paper(factors: usize, batch: usize) -> Self {
        Self {
            factors,
            batch,
            buffer_bits_per_element: 256 * 4,
            buffer_capacity_bits: 65_536,
            latencies: PhaseLatencies::paper_default(),
        }
    }

    /// An explored design point: `rows`-row subarrays with `adc_bits`
    /// similarity quantization (row-scaled analog latencies).
    pub fn for_shape(factors: usize, batch: usize, rows: usize, cols: usize, adc_bits: u8) -> Self {
        Self {
            factors,
            batch,
            buffer_bits_per_element: cols as u64 * adc_bits as u64,
            buffer_capacity_bits: 65_536,
            latencies: PhaseLatencies::for_rows(rows),
        }
    }
}

/// Result of scheduling one resonator iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationSchedule {
    /// Total latency in cycles for the whole batch, one iteration.
    pub cycles: u64,
    /// Latency of the unbuffered (switch-per-element) schedule, for the
    /// ablation.
    pub cycles_unbuffered: u64,
    /// RRAM tier switches in the buffered schedule.
    pub tier_switches: u64,
    /// RRAM tier switches in the unbuffered schedule.
    pub tier_switches_unbuffered: u64,
    /// Peak tier-1 buffer occupancy, bits.
    pub buffer_peak_bits: u64,
    /// True if the batch fits the buffer (otherwise the schedule splits
    /// into sub-batches transparently).
    pub fits_buffer: bool,
}

impl IterationSchedule {
    /// Computes the schedule for one iteration.
    ///
    /// The buffered schedule per factor is:
    /// `B×(unbind + sim + adc + buffer-write)`, one switch,
    /// `B×(transfer + proj + writeback)`, one switch back. If `B` elements
    /// exceed the buffer, the batch is processed in the largest fitting
    /// sub-batches.
    ///
    /// # Panics
    ///
    /// Panics if `factors == 0` or `batch == 0`.
    pub fn compute(cfg: &ScheduleConfig) -> Self {
        assert!(cfg.factors > 0, "need at least one factor");
        assert!(cfg.batch > 0, "need at least one batch element");
        let l = &cfg.latencies;
        let b = cfg.batch as u64;

        // How many elements fit in the buffer at once.
        let per_elem = cfg.buffer_bits_per_element.max(1);
        let fit = (cfg.buffer_capacity_bits / per_elem).max(1).min(b);
        let sub_batches = b.div_ceil(fit);
        let fits_buffer = sub_batches == 1;

        // Verify the buffered flow against the tier scheduler + buffer
        // models (the invariant, not just arithmetic).
        let mut scheduler = TierScheduler::new();
        let mut buffer = SramBuffer::new(cfg.buffer_capacity_bits, TechNode::N16);
        let mut peak = 0u64;
        for _factor in 0..cfg.factors {
            let mut remaining = b;
            while remaining > 0 {
                let chunk = remaining.min(fit);
                scheduler.activate(TierRole::RramSimilarity);
                for _ in 0..chunk {
                    scheduler
                        .run_phase(KernelPhase::Unbind)
                        .expect("digital phase");
                    scheduler
                        .run_phase(KernelPhase::Similarity)
                        .expect("similarity tier active");
                    scheduler
                        .run_phase(KernelPhase::AdcConvert)
                        .expect("digital phase");
                    buffer
                        .push(per_elem)
                        .expect("sub-batch sized to fit buffer");
                    peak = peak.max(buffer.used_bits());
                }
                scheduler.activate(TierRole::RramProjection);
                for _ in 0..chunk {
                    buffer.pop(per_elem);
                    scheduler
                        .run_phase(KernelPhase::Projection)
                        .expect("projection tier active");
                    scheduler
                        .run_phase(KernelPhase::Writeback)
                        .expect("digital phase");
                }
                remaining -= chunk;
            }
        }

        let f = cfg.factors as u64;
        let sim_leg = l.unbind + l.similarity_mvm + l.adc;
        let proj_leg = l.transfer + l.projection_mvm + l.writeback;
        let cycles = f * (sub_batches * 2 * l.tier_switch + b * (sim_leg + proj_leg)) + l.control;
        let cycles_unbuffered = f * (b * (2 * l.tier_switch + sim_leg + proj_leg)) + l.control;

        Self {
            cycles,
            cycles_unbuffered,
            tier_switches: scheduler.switches(),
            tier_switches_unbuffered: f * b * 2,
            buffer_peak_bits: peak,
            fits_buffer,
        }
    }

    /// Cycles per single batch element.
    pub fn cycles_per_element(&self, batch: usize) -> f64 {
        self.cycles as f64 / batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_one_matches_unbuffered_switches() {
        let s = IterationSchedule::compute(&ScheduleConfig::paper(4, 1));
        assert_eq!(s.tier_switches, s.tier_switches_unbuffered);
        assert!(s.fits_buffer);
        assert_eq!(s.buffer_peak_bits, 256 * 4);
    }

    #[test]
    fn batching_amortizes_switches() {
        let s1 = IterationSchedule::compute(&ScheduleConfig::paper(4, 1));
        let s32 = IterationSchedule::compute(&ScheduleConfig::paper(4, 32));
        // 32 elements share one switch pair per factor.
        assert_eq!(s32.tier_switches, s1.tier_switches);
        assert_eq!(s32.tier_switches_unbuffered, 4 * 32 * 2);
        // Per-element latency improves with batch.
        assert!(s32.cycles_per_element(32) < s1.cycles_per_element(1));
        // And the buffered schedule beats the unbuffered one.
        assert!(s32.cycles < s32.cycles_unbuffered);
    }

    #[test]
    fn paper_batch100_fits_64kb() {
        // Batch 100 × 256 cols × 4 bits = 100 kb > 64 kb: needs sub-batches.
        let s = IterationSchedule::compute(&ScheduleConfig::paper(4, 100));
        assert!(!s.fits_buffer);
        assert!(s.buffer_peak_bits <= 65_536);
        // Still far fewer switches than unbuffered.
        assert!(s.tier_switches < s.tier_switches_unbuffered / 10);
    }

    #[test]
    fn buffer_peak_tracks_batch() {
        let s8 = IterationSchedule::compute(&ScheduleConfig::paper(3, 8));
        assert_eq!(s8.buffer_peak_bits, 8 * 256 * 4);
    }

    #[test]
    fn cycles_scale_linearly_in_batch_dominated_regime() {
        let s10 = IterationSchedule::compute(&ScheduleConfig::paper(4, 10));
        let s20 = IterationSchedule::compute(&ScheduleConfig::paper(4, 20));
        let ratio = s20.cycles as f64 / s10.cycles as f64;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio {ratio}");
    }
}
