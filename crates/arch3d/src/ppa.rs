//! Operation counting and energy roll-up for one resonator iteration.
//!
//! TOPS figures count one MAC as two operations (the CIM-community
//! convention). Energy sums every component touched in one iteration;
//! leakage is excluded (sub-percent at these activity factors) and noted
//! in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use crate::neurosim::ComponentLibrary;
use crate::tsv::TsvSpec;
use cim::energy::{EnergyComponent, EnergyLedger};
use cim::tech::TechNode;

/// Fixed architecture shape shared by all compared designs (iso-capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchParams {
    /// Rows per subarray (`d`, the hardware hypervector dimension).
    pub rows: usize,
    /// Columns per subarray (`M`, codebook size).
    pub cols: usize,
    /// Factors `F` (one subarray per factor per RRAM tier).
    pub factors: usize,
    /// ADC resolution for similarity readout.
    pub adc_bits: u8,
}

impl ArchParams {
    /// The paper's design point: `d = 256`, `f = 4` subarrays per tier
    /// (one per factor), 256-column codebooks, 4-bit ADCs.
    pub fn paper() -> Self {
        Self {
            rows: 256,
            cols: 256,
            factors: 4,
            adc_bits: 4,
        }
    }

    /// Operations per resonator iteration (MAC = 2 ops): similarity and
    /// projection MVMs plus the XNOR unbinding chain.
    pub fn ops_per_iteration(&self) -> u64 {
        let d = self.rows as u64;
        let m = self.cols as u64;
        let f = self.factors as u64;
        f * (4 * d * m + (f - 1) * d)
    }

    /// ADC instances: one per similarity column across all factor
    /// subarrays (projection reads back 1-bit signs through comparators).
    pub fn adc_count(&self) -> usize {
        self.factors * self.cols
    }
}

impl Default for ArchParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Which MVM substrate executes the similarity/projection kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MvmSubstrate {
    /// Analog RRAM CIM (hybrid 2D and H3D designs).
    AnalogRram,
    /// Digital SRAM CIM (the fully-SRAM 2D baseline).
    DigitalSram,
}

/// Inputs to the per-iteration energy roll-up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyInputs {
    /// Architecture shape.
    pub arch: ArchParams,
    /// MVM substrate.
    pub substrate: MvmSubstrate,
    /// Node of the RRAM peripherals + ADCs.
    pub periphery_node: TechNode,
    /// Node of the digital blocks (XNOR, SRAM, control).
    pub digital_node: TechNode,
    /// Cycles of one iteration (control-energy accounting).
    pub cycles_per_iter: u64,
    /// TSV switches per iteration (0 for 2D designs).
    pub tsv_switches_per_iter: u64,
}

/// Computes the energy ledger of one resonator iteration.
pub fn iteration_energy(lib: &ComponentLibrary, inp: &EnergyInputs) -> EnergyLedger {
    let d = inp.arch.rows as f64;
    let m = inp.arch.cols as f64;
    let f = inp.arch.factors as f64;
    let macs_per_mvm = d * m;
    let mut ledger = EnergyLedger::new();

    let e_mac = match inp.substrate {
        MvmSubstrate::AnalogRram => lib.e_mac_rram_j(),
        MvmSubstrate::DigitalSram => lib.e_mac_sram_digital_j(inp.digital_node),
    };
    ledger.add(EnergyComponent::SimilarityMvm, f * macs_per_mvm * e_mac);
    ledger.add(EnergyComponent::ProjectionMvm, f * macs_per_mvm * e_mac);
    // Line drivers: D word lines (similarity) + M column drives
    // (projection) per factor.
    ledger.add(
        EnergyComponent::Control,
        f * (d + m) * lib.e_drive_row_j(inp.periphery_node),
    );
    if inp.substrate == MvmSubstrate::AnalogRram {
        ledger.add(
            EnergyComponent::Adc,
            f * m * lib.e_adc_j(inp.arch.adc_bits, inp.periphery_node),
        );
        // Projection sign readout.
        ledger.add(
            EnergyComponent::Activation,
            f * d * lib.e_sense_j(inp.periphery_node),
        );
    }
    // Unbinding: (F−1) vector XNORs per factor.
    ledger.add(
        EnergyComponent::Unbind,
        f * (f - 1.0) * d * lib.e_xnor_gate_j(inp.digital_node),
    );
    // Buffer: quantized similarities written + read once per factor.
    ledger.add(
        EnergyComponent::SramBuffer,
        f * m * inp.arch.adc_bits as f64 * 2.0 * lib.e_sram_bit_j(inp.digital_node),
    );
    ledger.add(
        EnergyComponent::Control,
        inp.cycles_per_iter as f64 * lib.e_control_cycle_j(inp.digital_node),
    );
    if inp.tsv_switches_per_iter > 0 {
        let tsv = TsvSpec::paper();
        // RRAM-side signals swing at the 40 nm supply.
        ledger.add(
            EnergyComponent::Interconnect,
            inp.tsv_switches_per_iter as f64 * tsv.switch_energy_j(TechNode::N40.vdd()),
        );
    }
    ledger
}

/// TSV switches of one H3D iteration: per factor, `D` word-line drives in,
/// `M` analog column currents out (one-shot), `M·bits` digital transfer to
/// the projection tier, and `D` sign lines back.
pub fn h3d_tsv_switches_per_iter(arch: &ArchParams) -> u64 {
    let d = arch.rows as u64;
    let m = arch.cols as u64;
    arch.factors as u64 * (d + m + m * arch.adc_bits as u64 + d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_count_matches_hand_calc() {
        let a = ArchParams::paper();
        // 4 × (4·256·256 + 3·256) = 1,051,648.
        assert_eq!(a.ops_per_iteration(), 1_051_648);
        assert_eq!(a.adc_count(), 1024);
    }

    #[test]
    fn analog_iteration_is_cheaper_than_digital_at_same_node() {
        let lib = ComponentLibrary::heterogeneous();
        let arch = ArchParams::paper();
        let analog = iteration_energy(
            &lib,
            &EnergyInputs {
                arch,
                substrate: MvmSubstrate::AnalogRram,
                periphery_node: TechNode::N40,
                digital_node: TechNode::N40,
                cycles_per_iter: 216,
                tsv_switches_per_iter: 0,
            },
        );
        let digital = iteration_energy(
            &lib,
            &EnergyInputs {
                arch,
                substrate: MvmSubstrate::DigitalSram,
                periphery_node: TechNode::N40,
                digital_node: TechNode::N40,
                cycles_per_iter: 216,
                tsv_switches_per_iter: 0,
            },
        );
        assert!(analog.total() < digital.total());
    }

    #[test]
    fn tsv_energy_is_minor_but_nonzero() {
        let lib = ComponentLibrary::heterogeneous();
        let arch = ArchParams::paper();
        let inp = EnergyInputs {
            arch,
            substrate: MvmSubstrate::AnalogRram,
            periphery_node: TechNode::N16,
            digital_node: TechNode::N16,
            cycles_per_iter: 216,
            tsv_switches_per_iter: h3d_tsv_switches_per_iter(&arch),
        };
        let ledger = iteration_energy(&lib, &inp);
        let frac = ledger.fraction(EnergyComponent::Interconnect);
        assert!(frac > 0.0 && frac < 0.10, "TSV fraction {frac}");
    }

    #[test]
    fn mvm_dominates_energy() {
        // The Fig. 1c argument on the energy side: MVMs are the bulk.
        let lib = ComponentLibrary::heterogeneous();
        let arch = ArchParams::paper();
        let ledger = iteration_energy(
            &lib,
            &EnergyInputs {
                arch,
                substrate: MvmSubstrate::AnalogRram,
                periphery_node: TechNode::N16,
                digital_node: TechNode::N16,
                cycles_per_iter: 216,
                tsv_switches_per_iter: h3d_tsv_switches_per_iter(&arch),
            },
        );
        let mvm = ledger.fraction(EnergyComponent::SimilarityMvm)
            + ledger.fraction(EnergyComponent::ProjectionMvm);
        assert!(mvm > 0.7, "MVM fraction {mvm}");
    }
}
