//! Heterogeneous 3D-IC architecture models for H3DFact.
//!
//! This crate covers everything between the device models (`cim`) and the
//! full engine (`h3dfact-core`): the three-tier organization (Sec. IV of
//! the paper), through-silicon-via and hybrid-bonding interconnects
//! (Table I), the workload mapping with its single-active-RRAM-tier
//! constraint (Fig. 3), SRAM-buffered batch pipelining, floorplans
//! (Fig. 4), and the NeuroSim-style component library from which the
//! power/performance/area roll-up of Table III is computed — for H3DFact
//! itself and for the two iso-capacity 2D baselines it is compared against.
//!
//! # Example
//!
//! ```
//! use arch3d::design::{build_report, DesignVariant};
//!
//! let h3d = build_report(DesignVariant::H3dThreeTier);
//! let hybrid = build_report(DesignVariant::Hybrid2d);
//! // The headline abstract claim: ~5.9× less silicon than hybrid 2D.
//! assert!(hybrid.total_area_mm2 / h3d.total_area_mm2 > 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod explore;
pub mod floorplan;
pub mod mapping;
pub mod neurosim;
pub mod ppa;
pub mod schedule;
pub mod tier;
pub mod tsv;

pub use design::{build_report, DesignReport, DesignVariant};
pub use explore::{explore, pareto_frontier, DesignPoint, ExploreConfig};
pub use floorplan::{Floorplan, Macro};
pub use mapping::{KernelPhase, TierRole, TierScheduler};
pub use neurosim::{ComponentKind, ComponentLibrary};
pub use schedule::{IterationSchedule, ScheduleConfig};
pub use tsv::{HybridBondSpec, TsvSpec};
