//! Tier floorplans (paper Fig. 4) and power-map rasterization for the
//! thermal solver.
//!
//! The floorplanner is intentionally simple — the paper's Fig. 4 is a
//! hand-drawn arrangement of four RRAM subarrays with peripheral strips
//! (RRAM tiers) and an ADC row + SRAM buffer + control block (digital
//! tier) — but it is geometrically consistent: macros never overlap, fill
//! the die within a packing margin, and carry the power assignments the
//! thermal analysis consumes.

use serde::{Deserialize, Serialize};

/// One placed macro.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Macro {
    /// Block name.
    pub name: String,
    /// Lower-left x, mm.
    pub x_mm: f64,
    /// Lower-left y, mm.
    pub y_mm: f64,
    /// Width, mm.
    pub w_mm: f64,
    /// Height, mm.
    pub h_mm: f64,
    /// Dissipated power, watts.
    pub power_w: f64,
}

impl Macro {
    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.w_mm * self.h_mm
    }

    /// True if this macro overlaps `other` (shared edges do not count;
    /// penetration below 1 nm is treated as touching).
    pub fn overlaps(&self, other: &Macro) -> bool {
        const EPS: f64 = 1e-6; // mm
        self.x_mm + EPS < other.x_mm + other.w_mm
            && other.x_mm + EPS < self.x_mm + self.w_mm
            && self.y_mm + EPS < other.y_mm + other.h_mm
            && other.y_mm + EPS < self.y_mm + self.h_mm
    }
}

/// A floorplanned tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    /// Tier name.
    pub name: String,
    /// Die width, mm.
    pub width_mm: f64,
    /// Die height, mm.
    pub height_mm: f64,
    /// Placed macros.
    pub macros: Vec<Macro>,
}

impl Floorplan {
    /// Die area, mm².
    pub fn die_area_mm2(&self) -> f64 {
        self.width_mm * self.height_mm
    }

    /// Total macro power, watts.
    pub fn total_power_w(&self) -> f64 {
        self.macros.iter().map(|m| m.power_w).sum()
    }

    /// Checks geometric sanity: all macros inside the die, no overlaps.
    pub fn validate(&self) -> Result<(), String> {
        for m in &self.macros {
            if m.x_mm < -1e-9
                || m.y_mm < -1e-9
                || m.x_mm + m.w_mm > self.width_mm + 1e-9
                || m.y_mm + m.h_mm > self.height_mm + 1e-9
            {
                return Err(format!("macro {} outside die", m.name));
            }
        }
        for i in 0..self.macros.len() {
            for j in (i + 1)..self.macros.len() {
                if self.macros[i].overlaps(&self.macros[j]) {
                    return Err(format!(
                        "macros {} and {} overlap",
                        self.macros[i].name, self.macros[j].name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Rasterizes macro power onto an `nx × ny` grid (row-major, watts per
    /// cell) for the thermal solver. Power is distributed uniformly over
    /// each macro's area; empty regions get zero.
    pub fn power_grid(&self, nx: usize, ny: usize) -> Vec<f64> {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        let mut grid = vec![0.0f64; nx * ny];
        let dx = self.width_mm / nx as f64;
        let dy = self.height_mm / ny as f64;
        for m in &self.macros {
            if m.area_mm2() <= 0.0 || m.power_w == 0.0 {
                continue;
            }
            let density = m.power_w / m.area_mm2();
            for iy in 0..ny {
                let y0 = iy as f64 * dy;
                let y1 = y0 + dy;
                let oy = (y1.min(m.y_mm + m.h_mm) - y0.max(m.y_mm)).max(0.0);
                if oy == 0.0 {
                    continue;
                }
                for ix in 0..nx {
                    let x0 = ix as f64 * dx;
                    let x1 = x0 + dx;
                    let ox = (x1.min(m.x_mm + m.w_mm) - x0.max(m.x_mm)).max(0.0);
                    if ox > 0.0 {
                        grid[iy * nx + ix] += density * ox * oy;
                    }
                }
            }
        }
        grid
    }
}

/// Builds the RRAM tier floorplan (Fig. 4a): a 2×2 arrangement of
/// subarrays with the programming/bias strips on the outer edges and the
/// level-shifter column through the middle. `power_w` is split 80 % arrays
/// / 20 % periphery, with the array power biased toward the die's southern
/// half as the paper's thermal map shows.
pub fn rram_tier_floorplan(name: &str, die_side_mm: f64, power_w: f64) -> Floorplan {
    let s = die_side_mm;
    let strip = 0.12 * s;
    let array = (s - 3.0 * strip) / 2.0;
    let p_array = 0.80 * power_w / 4.0;
    let p_periph = 0.20 * power_w / 3.0;
    // Southern arrays run hotter (60/40 split of array power).
    let south_bias = 1.2;
    let north_bias = 0.8;
    let mk = |name: &str, x: f64, y: f64, w: f64, h: f64, p: f64| Macro {
        name: name.to_string(),
        x_mm: x,
        y_mm: y,
        w_mm: w,
        h_mm: h,
        power_w: p,
    };
    Floorplan {
        name: name.to_string(),
        width_mm: s,
        height_mm: s,
        macros: vec![
            mk("rram-sw", strip, strip, array, array, p_array * south_bias),
            mk(
                "rram-se",
                2.0 * strip + array,
                strip,
                array,
                array,
                p_array * south_bias,
            ),
            mk(
                "rram-nw",
                strip,
                2.0 * strip + array,
                array,
                array,
                p_array * north_bias,
            ),
            mk(
                "rram-ne",
                2.0 * strip + array,
                2.0 * strip + array,
                array,
                array,
                p_array * north_bias,
            ),
            mk("prog-strip-south", 0.0, 0.0, s, strip, p_periph),
            mk(
                "shifter-column",
                0.0,
                strip,
                strip,
                s - 2.0 * strip,
                p_periph,
            ),
            mk("bias-dcap-north", 0.0, s - strip, s, strip, p_periph),
        ],
    }
}

/// Builds the digital tier floorplan (Fig. 4b): calibrated-ADC banks along
/// the south edge (hence the southern hot spot), SRAM buffers in the
/// middle, control + XNOR in the north. Power split: 45 % ADC, 30 % SRAM,
/// 25 % control/XNOR.
pub fn digital_tier_floorplan(name: &str, die_side_mm: f64, power_w: f64) -> Floorplan {
    let s = die_side_mm;
    let band = s / 3.0;
    let mk = |name: &str, x: f64, y: f64, w: f64, h: f64, p: f64| Macro {
        name: name.to_string(),
        x_mm: x,
        y_mm: y,
        w_mm: w,
        h_mm: h,
        power_w: p,
    };
    Floorplan {
        name: name.to_string(),
        width_mm: s,
        height_mm: s,
        macros: vec![
            mk("adc-bank", 0.0, 0.0, s, band, 0.45 * power_w),
            mk("sram-buffer", 0.0, band, s, band, 0.30 * power_w),
            mk("ctrl-xnor", 0.0, 2.0 * band, s, band, 0.25 * power_w),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rram_floorplan_is_valid() {
        let fp = rram_tier_floorplan("tier-3", 0.18, 0.010);
        fp.validate().expect("valid floorplan");
        assert!((fp.total_power_w() - 0.010).abs() < 1e-12);
        assert_eq!(fp.macros.len(), 7);
    }

    #[test]
    fn digital_floorplan_is_valid() {
        let fp = digital_tier_floorplan("tier-1", 0.18, 0.020);
        fp.validate().expect("valid floorplan");
        assert!((fp.total_power_w() - 0.020).abs() < 1e-9);
    }

    #[test]
    fn power_grid_conserves_power() {
        let fp = rram_tier_floorplan("tier-3", 0.18, 0.010);
        for (nx, ny) in [(8, 8), (16, 16), (31, 17)] {
            let g = fp.power_grid(nx, ny);
            let sum: f64 = g.iter().sum();
            assert!((sum - 0.010).abs() < 1e-9, "{nx}x{ny}: power {sum}");
        }
    }

    #[test]
    fn southern_half_is_hotter_by_design() {
        let fp = rram_tier_floorplan("tier-3", 0.18, 0.010);
        let g = fp.power_grid(16, 16);
        let south: f64 = g[..16 * 8].iter().sum();
        let north: f64 = g[16 * 8..].iter().sum();
        assert!(south > north, "south {south} vs north {north}");
    }

    #[test]
    fn overlap_detection_works() {
        let a = Macro {
            name: "a".into(),
            x_mm: 0.0,
            y_mm: 0.0,
            w_mm: 1.0,
            h_mm: 1.0,
            power_w: 0.0,
        };
        let mut b = a.clone();
        b.name = "b".into();
        b.x_mm = 0.5;
        assert!(a.overlaps(&b));
        b.x_mm = 1.0; // shares an edge only
        assert!(!a.overlaps(&b));
    }
}
