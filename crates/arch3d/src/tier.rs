//! Tier composition: which components sit on which die, at which node.

use cim::tech::TechNode;
use serde::{Deserialize, Serialize};

use crate::neurosim::{ComponentKind, ComponentLibrary};

/// One instantiated component population on a tier.
///
/// `count` is a (possibly fractional) number of *reference-sized*
/// instances: a 128-row subarray counts as half of the reference 256×256
/// macro, which keeps the library calibration anchored while letting the
/// design-space explorer scale shapes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentUse {
    /// What the component is.
    pub kind: ComponentKind,
    /// Equivalent reference-sized instances.
    pub count: f64,
}

/// One die (tier) of a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tier {
    /// Human-readable name ("tier-3 RRAM similarity", …).
    pub name: String,
    /// Process node of this die.
    pub node: TechNode,
    /// Component populations.
    pub components: Vec<ComponentUse>,
}

impl Tier {
    /// Creates a tier.
    pub fn new(name: impl Into<String>, node: TechNode, components: Vec<ComponentUse>) -> Self {
        Self {
            name: name.into(),
            node,
            components,
        }
    }

    /// Total silicon area of the tier in mm².
    pub fn area_mm2(&self, lib: &ComponentLibrary) -> f64 {
        self.components
            .iter()
            .map(|c| c.count * lib.area_mm2(c.kind, self.node))
            .sum()
    }

    /// Equivalent instances of `kind` on this tier.
    pub fn count_of(&self, kind: ComponentKind) -> f64 {
        self.components
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| c.count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_area_sums_components() {
        let lib = ComponentLibrary::heterogeneous();
        let tier = Tier::new(
            "rram",
            TechNode::N40,
            vec![
                ComponentUse {
                    kind: ComponentKind::RramSubarray,
                    count: 4.0,
                },
                ComponentUse {
                    kind: ComponentKind::RramTierOverhead,
                    count: 1.0,
                },
            ],
        );
        let expect = 4.0 * lib.area_mm2(ComponentKind::RramSubarray, TechNode::N40)
            + lib.area_mm2(ComponentKind::RramTierOverhead, TechNode::N40);
        assert!((tier.area_mm2(&lib) - expect).abs() < 1e-12);
        assert_eq!(tier.count_of(ComponentKind::RramSubarray), 4.0);
        assert_eq!(tier.count_of(ComponentKind::SarAdc4), 0.0);
    }
}
