//! Through-silicon vias and hybrid bonding (paper Table I).
//!
//! The electrical model is deliberately first-order and fully documented:
//! a TSV is a copper cylinder through silicon with an oxide liner, so its
//! capacitance follows the coaxial formula and its resistance the cylinder
//! resistivity; the area cost is the keep-out square of one pitch. These
//! are the quantities Table I implies and that recent H3D designs
//! (H3DAtten, AMD V-Cache) budget with.

use serde::{Deserialize, Serialize};

/// Vacuum permittivity, F/m.
const EPS0: f64 = 8.854e-12;
/// SiO₂ relative permittivity.
const EPS_OX: f64 = 3.9;
/// Copper resistivity, Ω·m.
const RHO_CU: f64 = 1.72e-8;

/// TSV geometry (defaults = paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TsvSpec {
    /// Via diameter in µm.
    pub diameter_um: f64,
    /// Minimum pitch in µm (keep-out).
    pub pitch_um: f64,
    /// Oxide liner thickness in nm.
    pub oxide_thickness_nm: f64,
    /// Via height (wafer thickness after thinning) in µm.
    pub height_um: f64,
}

impl TsvSpec {
    /// The paper's Table I values: 2 µm diameter, 4 µm pitch, 100 nm oxide,
    /// 10 µm height.
    pub fn paper() -> Self {
        Self {
            diameter_um: 2.0,
            pitch_um: 4.0,
            oxide_thickness_nm: 100.0,
            height_um: 10.0,
        }
    }

    /// Parasitic capacitance of one TSV in farads (coaxial liner model):
    /// `C = 2π ε₀ ε_ox h / ln((r + t_ox)/r)`.
    pub fn capacitance_f(&self) -> f64 {
        let r = self.diameter_um * 1e-6 / 2.0;
        let t_ox = self.oxide_thickness_nm * 1e-9;
        let h = self.height_um * 1e-6;
        2.0 * std::f64::consts::PI * EPS0 * EPS_OX * h / ((r + t_ox) / r).ln()
    }

    /// Series resistance of one TSV in ohms (`ρ·h/A`).
    pub fn resistance_ohm(&self) -> f64 {
        let r = self.diameter_um * 1e-6 / 2.0;
        let h = self.height_um * 1e-6;
        RHO_CU * h / (std::f64::consts::PI * r * r)
    }

    /// Silicon keep-out area of one TSV in mm² (one pitch square).
    pub fn area_mm2(&self) -> f64 {
        (self.pitch_um * 1e-3) * (self.pitch_um * 1e-3)
    }

    /// Dynamic switching energy of one full-swing transfer at `vdd`, J
    /// (`C·V²`; the factor ½ is omitted because both edges of a cycle
    /// charge/discharge).
    pub fn switch_energy_j(&self, vdd: f64) -> f64 {
        self.capacitance_f() * vdd * vdd
    }

    /// TSV count to connect one `rows × cols` RRAM array to remote
    /// peripherals: `rows` word lines + `cols` bit lines + `cols/2` source
    /// lines (paper Sec. IV-B).
    pub fn count_for_array(&self, rows: usize, cols: usize) -> usize {
        rows + cols + cols / 2
    }

    /// Clock derate from the extra TSV load on timing-critical paths:
    /// `f = f0 / (1 + C_tsv / C_path)` where `C_path` is the native loading
    /// of the path. With the paper geometry this lands at the 200 → 185 MHz
    /// penalty Table III reports for `C_path ≈ 280 fF`.
    pub fn frequency_derate(&self, c_path_f: f64) -> f64 {
        1.0 / (1.0 + self.capacitance_f() / c_path_f)
    }
}

impl Default for TsvSpec {
    fn default() -> Self {
        Self::paper()
    }
}

/// Hybrid (Cu-Cu) bonding between face-to-face tiers (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridBondSpec {
    /// Bond pad pitch in µm.
    pub pitch_um: f64,
    /// Bond layer thickness in µm.
    pub thickness_um: f64,
}

impl HybridBondSpec {
    /// The paper's Table I values: 10 µm pitch, 3 µm thickness.
    pub fn paper() -> Self {
        Self {
            pitch_um: 10.0,
            thickness_um: 3.0,
        }
    }

    /// Pad capacitance in farads — parallel-plate estimate over the pad
    /// area with an effective dielectric gap of the bond layer; small
    /// relative to a TSV.
    pub fn capacitance_f(&self) -> f64 {
        let side = self.pitch_um * 1e-6 / 2.0;
        let area = side * side;
        EPS0 * EPS_OX * area / (self.thickness_um * 1e-6)
    }

    /// Bond pad area cost in mm².
    pub fn area_mm2(&self) -> f64 {
        (self.pitch_um * 1e-3) * (self.pitch_um * 1e-3)
    }
}

impl Default for HybridBondSpec {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tsv_capacitance_in_expected_range() {
        let c = TsvSpec::paper().capacitance_f();
        // Typical µm-scale TSVs are tens of fF.
        assert!(c > 5e-15 && c < 100e-15, "C = {c:.3e} F");
    }

    #[test]
    fn paper_tsv_resistance_is_small() {
        let r = TsvSpec::paper().resistance_ohm();
        assert!(r > 1e-3 && r < 1.0, "R = {r:.3e} Ω");
    }

    #[test]
    fn array_tsv_count_matches_paper() {
        // 256×256 array: 256 WL + 256 BL + 128 SL = 640; four arrays per
        // tier × two RRAM tiers = 5120 (Table III).
        let spec = TsvSpec::paper();
        assert_eq!(spec.count_for_array(256, 256), 640);
        assert_eq!(spec.count_for_array(256, 256) * 4 * 2, 5120);
    }

    #[test]
    fn frequency_derate_matches_table3() {
        // Table III: 200 MHz (2D) → 185 MHz (H3D).
        let d = TsvSpec::paper().frequency_derate(280e-15);
        let f = 200.0 * d;
        assert!((f - 185.0).abs() < 3.0, "derated f = {f:.1} MHz");
    }

    #[test]
    fn tsv_energy_scales_with_vdd_squared() {
        let spec = TsvSpec::paper();
        let e08 = spec.switch_energy_j(0.8);
        let e11 = spec.switch_energy_j(1.1);
        assert!((e11 / e08 - (1.1f64 / 0.8).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn hybrid_bond_is_lighter_than_tsv() {
        assert!(HybridBondSpec::paper().capacitance_f() < TsvSpec::paper().capacitance_f());
    }

    #[test]
    fn area_costs_are_positive() {
        assert!(TsvSpec::paper().area_mm2() > 0.0);
        assert!(HybridBondSpec::paper().area_mm2() > 0.0);
    }
}
