//! Design-space exploration over the H3DFact hardware parameters.
//!
//! The paper's Sec. IV-A notes that the architecture "is adept at handling
//! the diverse parameters characteristic of resonator networks": the
//! hardware is configured by the subarray row count `d`, the subarray
//! count per tier `f`, and the ADC resolution, with `d = 256`, `f = 4`,
//! 4-bit chosen as the example design point. This module sweeps those
//! knobs, rolls up PPA for each configuration, and extracts the Pareto
//! frontier — the quantitative version of the paper's design-methodology
//! argument.

use serde::{Deserialize, Serialize};

use crate::design::{build_report_with, DesignReport, DesignVariant};
use crate::ppa::ArchParams;

/// One explored configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Rows per subarray (`d`).
    pub rows: usize,
    /// Subarrays per RRAM tier (`f`), one per factor.
    pub subarrays: usize,
    /// ADC resolution, bits.
    pub adc_bits: u8,
    /// Full PPA report at this point.
    pub report: DesignReport,
}

impl DesignPoint {
    /// True if `other` dominates this point (better or equal in density
    /// *and* efficiency, strictly better in one).
    pub fn dominated_by(&self, other: &DesignPoint) -> bool {
        let d0 = self.report.compute_density_tops_mm2;
        let e0 = self.report.energy_eff_tops_w;
        let d1 = other.report.compute_density_tops_mm2;
        let e1 = other.report.energy_eff_tops_w;
        d1 >= d0 && e1 >= e0 && (d1 > d0 || e1 > e0)
    }
}

/// Sweep ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreConfig {
    /// Subarray row counts to try (`d`).
    pub rows: Vec<usize>,
    /// Subarray counts per tier (`f`).
    pub subarrays: Vec<usize>,
    /// ADC resolutions.
    pub adc_bits: Vec<u8>,
}

impl ExploreConfig {
    /// The neighbourhood of the paper's design point.
    pub fn paper_neighbourhood() -> Self {
        Self {
            rows: vec![128, 256, 512],
            subarrays: vec![2, 4, 8],
            adc_bits: vec![4, 8],
        }
    }
}

/// Sweeps the H3D design space, returning every point (sorted by compute
/// density, descending).
pub fn explore(cfg: &ExploreConfig) -> Vec<DesignPoint> {
    let mut points = Vec::new();
    for &rows in &cfg.rows {
        for &subarrays in &cfg.subarrays {
            for &adc_bits in &cfg.adc_bits {
                let arch = ArchParams {
                    rows,
                    cols: 256,
                    factors: subarrays,
                    adc_bits,
                };
                let report = build_report_with(DesignVariant::H3dThreeTier, arch);
                points.push(DesignPoint {
                    rows,
                    subarrays,
                    adc_bits,
                    report,
                });
            }
        }
    }
    points.sort_by(|a, b| {
        b.report
            .compute_density_tops_mm2
            .total_cmp(&a.report.compute_density_tops_mm2)
    });
    points
}

/// Filters `points` down to the density/efficiency Pareto frontier.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| p.dominated_by(q)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid() {
        let cfg = ExploreConfig::paper_neighbourhood();
        let points = explore(&cfg);
        assert_eq!(
            points.len(),
            cfg.rows.len() * cfg.subarrays.len() * cfg.adc_bits.len()
        );
        // Sorted by density, descending.
        for w in points.windows(2) {
            assert!(w[0].report.compute_density_tops_mm2 >= w[1].report.compute_density_tops_mm2);
        }
    }

    #[test]
    fn paper_point_is_on_or_near_the_frontier() {
        let points = explore(&ExploreConfig::paper_neighbourhood());
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty());
        // The paper's d=256 / f=4 / 4-bit point should not be *heavily*
        // dominated: its density must be within 2x of the best frontier
        // density at comparable efficiency.
        let paper = points
            .iter()
            .find(|p| p.rows == 256 && p.subarrays == 4 && p.adc_bits == 4)
            .expect("paper point swept");
        let best_density = frontier
            .iter()
            .map(|p| p.report.compute_density_tops_mm2)
            .fold(0.0f64, f64::max);
        assert!(
            paper.report.compute_density_tops_mm2 > best_density / 2.0,
            "paper point density {} vs best {}",
            paper.report.compute_density_tops_mm2,
            best_density
        );
    }

    #[test]
    fn frontier_is_mutually_nondominated() {
        let points = explore(&ExploreConfig::paper_neighbourhood());
        let frontier = pareto_frontier(&points);
        for a in &frontier {
            for b in &frontier {
                if a != b {
                    assert!(!a.dominated_by(b), "frontier point dominated");
                }
            }
        }
    }

    #[test]
    fn more_adc_bits_never_helps_both_axes() {
        // 8-bit readout costs area and energy at equal throughput, so for
        // any (d, f) the 8-bit point must be dominated by its 4-bit twin.
        let points = explore(&ExploreConfig::paper_neighbourhood());
        for p4 in points.iter().filter(|p| p.adc_bits == 4) {
            let p8 = points
                .iter()
                .find(|p| p.adc_bits == 8 && p.rows == p4.rows && p.subarrays == p4.subarrays)
                .expect("8-bit twin");
            assert!(p8.dominated_by(p4), "d={} f={}", p4.rows, p4.subarrays);
        }
    }
}
