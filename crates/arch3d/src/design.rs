//! The three compared designs and their full PPA reports (paper Table III).
//!
//! All designs hold *iso-capacity* computing resources — eight 256×256 MVM
//! subarrays (four similarity + four projection), a 64 kb buffer, XNOR
//! unbinding, control — and differ only in substrate, node assignment, and
//! 2D-vs-3D integration:
//!
//! | design | MVM substrate | RRAM node | periphery | digital | stacking |
//! |---|---|---|---|---|---|
//! | `Sram2d` | digital SRAM CIM | — | — | 16 nm | single die |
//! | `Hybrid2d` | analog RRAM | 40 nm | 40 nm | 40 nm | single die |
//! | `H3dThreeTier` | analog RRAM | 40 nm | 16 nm | 16 nm | 3 tiers |

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::neurosim::{ComponentKind, ComponentLibrary};
use crate::ppa::{
    h3d_tsv_switches_per_iter, iteration_energy, ArchParams, EnergyInputs, MvmSubstrate,
};
use crate::schedule::{IterationSchedule, ScheduleConfig};
use crate::tier::{ComponentUse, Tier};
use crate::tsv::TsvSpec;
use cim::energy::EnergyLedger;
use cim::tech::TechNode;

/// Base clock of the 2D designs, MHz (Table III).
pub const BASE_FREQUENCY_MHZ: f64 = 200.0;
/// Native path loading used for the TSV frequency derate, farads.
pub const NATIVE_PATH_LOAD_F: f64 = 280e-15;

/// One of the three compared designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignVariant {
    /// Fully digital SRAM-CIM design, everything at 16 nm, one die.
    Sram2d,
    /// Monolithic RRAM + SRAM design, everything at 40 nm, one die.
    Hybrid2d,
    /// H3DFact: two 40 nm RRAM tiers over a 16 nm digital tier.
    H3dThreeTier,
}

impl fmt::Display for DesignVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignVariant::Sram2d => write!(f, "SRAM 2D"),
            DesignVariant::Hybrid2d => write!(f, "Hybrid 2D"),
            DesignVariant::H3dThreeTier => write!(f, "3-Tier H3D"),
        }
    }
}

impl DesignVariant {
    /// Component library appropriate for this design's integration style.
    pub fn library(self) -> ComponentLibrary {
        match self {
            DesignVariant::Hybrid2d => ComponentLibrary::monolithic_with_rram(),
            _ => ComponentLibrary::heterogeneous(),
        }
    }

    /// Dies of the design with their component populations.
    ///
    /// Counts are *reference-equivalent* (256×256 macros): a `d × M`
    /// subarray contributes `d·M / 256²` reference macros, and per-array
    /// periphery scales with its row count.
    pub fn tiers(self, arch: &ArchParams) -> Vec<Tier> {
        let f = arch.factors as f64;
        // Size of one factor's array relative to the 256×256 reference.
        let macro_scale = (arch.rows * arch.cols) as f64 / (256.0 * 256.0);
        let periph_scale = arch.rows as f64 / 256.0;
        let use_ = |kind, count| ComponentUse { kind, count };
        let adc_kind = if arch.adc_bits <= 4 {
            ComponentKind::SarAdc4
        } else {
            ComponentKind::SarAdc8
        };
        match self {
            DesignVariant::Sram2d => vec![Tier::new(
                "die (16 nm digital CIM)",
                TechNode::N16,
                vec![
                    use_(ComponentKind::SramCimSubarray, 2.0 * f * macro_scale),
                    use_(ComponentKind::SramBuffer64kb, 1.0),
                    use_(ComponentKind::XnorBank, 1.0),
                    use_(ComponentKind::Control, 1.0),
                ],
            )],
            DesignVariant::Hybrid2d => vec![Tier::new(
                "die (40 nm monolithic RRAM+SRAM)",
                TechNode::N40,
                vec![
                    use_(ComponentKind::RramSubarray, 2.0 * f * macro_scale),
                    use_(ComponentKind::RramTierOverhead, 2.0),
                    use_(ComponentKind::RramPeripheral, 2.0 * f * periph_scale),
                    use_(adc_kind, arch.adc_count() as f64),
                    use_(ComponentKind::SramBuffer64kb, 1.0),
                    use_(ComponentKind::XnorBank, 1.0),
                    use_(ComponentKind::Control, 1.0),
                ],
            )],
            DesignVariant::H3dThreeTier => vec![
                Tier::new(
                    "tier-3 (40 nm RRAM, similarity)",
                    TechNode::N40,
                    vec![
                        use_(ComponentKind::RramSubarray, f * macro_scale),
                        use_(ComponentKind::RramTierOverhead, 1.0),
                    ],
                ),
                Tier::new(
                    "tier-2 (40 nm RRAM, projection)",
                    TechNode::N40,
                    vec![
                        use_(ComponentKind::RramSubarray, f * macro_scale),
                        use_(ComponentKind::RramTierOverhead, 1.0),
                    ],
                ),
                Tier::new(
                    "tier-1 (16 nm digital + periphery)",
                    TechNode::N16,
                    vec![
                        use_(ComponentKind::RramPeripheral, 2.0 * f * periph_scale),
                        use_(adc_kind, arch.adc_count() as f64),
                        use_(ComponentKind::SramBuffer64kb, 1.0),
                        use_(ComponentKind::XnorBank, 1.0),
                        use_(ComponentKind::Control, 1.0),
                    ],
                ),
            ],
        }
    }

    /// MVM substrate of this design.
    pub fn substrate(self) -> MvmSubstrate {
        match self {
            DesignVariant::Sram2d => MvmSubstrate::DigitalSram,
            _ => MvmSubstrate::AnalogRram,
        }
    }

    /// Node of RRAM peripherals and ADCs.
    pub fn periphery_node(self) -> TechNode {
        match self {
            DesignVariant::Hybrid2d => TechNode::N40,
            _ => TechNode::N16,
        }
    }

    /// Node of the digital blocks.
    pub fn digital_node(self) -> TechNode {
        match self {
            DesignVariant::Hybrid2d => TechNode::N40,
            _ => TechNode::N16,
        }
    }

    /// The paper's Table III reference accuracy for this design, percent
    /// (deterministic designs lack the stochastic escape mechanism).
    pub fn paper_reference_accuracy_pct(self) -> f64 {
        match self {
            DesignVariant::Sram2d => 95.8,
            _ => 99.3,
        }
    }
}

/// Full PPA report of one design (one row of Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// Which design.
    pub variant: DesignVariant,
    /// Architecture shape used.
    pub arch: ArchParams,
    /// Per-tier `(name, mm²)`.
    pub tier_areas: Vec<(String, f64)>,
    /// Total silicon across tiers, mm².
    pub total_area_mm2: f64,
    /// Package footprint (largest tier), mm².
    pub footprint_mm2: f64,
    /// Clock frequency, MHz.
    pub frequency_mhz: f64,
    /// Cycles per resonator iteration (batch 1).
    pub cycles_per_iter: u64,
    /// Operations per iteration.
    pub ops_per_iter: u64,
    /// Throughput, TOPS.
    pub throughput_tops: f64,
    /// Compute density, TOPS/mm² (on total silicon).
    pub compute_density_tops_mm2: f64,
    /// Energy of one iteration, joules.
    pub energy_per_iter_j: f64,
    /// Energy efficiency, TOPS/W.
    pub energy_eff_tops_w: f64,
    /// Energy ledger of one iteration.
    pub energy_ledger: EnergyLedger,
    /// Column-parallel ADC instances.
    pub adc_count: usize,
    /// TSV count (0 for 2D).
    pub tsv_count: usize,
    /// Factorization accuracy in percent, filled by the benchmark harness
    /// from actual engine runs (`None` until measured).
    pub accuracy_pct: Option<f64>,
}

impl DesignReport {
    /// Compute-density ratio `self / other`.
    pub fn density_ratio(&self, other: &DesignReport) -> f64 {
        self.compute_density_tops_mm2 / other.compute_density_tops_mm2
    }

    /// Energy-efficiency ratio `self / other`.
    pub fn efficiency_ratio(&self, other: &DesignReport) -> f64 {
        self.energy_eff_tops_w / other.energy_eff_tops_w
    }

    /// Silicon-area ratio `other / self` (how much *less* silicon `self`
    /// uses).
    pub fn area_saving_vs(&self, other: &DesignReport) -> f64 {
        other.total_area_mm2 / self.total_area_mm2
    }
}

/// Builds the PPA report for `variant` at the paper's design point.
pub fn build_report(variant: DesignVariant) -> DesignReport {
    build_report_with(variant, ArchParams::paper())
}

/// Builds the PPA report for `variant` with an explicit architecture shape.
pub fn build_report_with(variant: DesignVariant, arch: ArchParams) -> DesignReport {
    let lib = variant.library();
    let tiers = variant.tiers(&arch);
    let tier_areas: Vec<(String, f64)> = tiers
        .iter()
        .map(|t| (t.name.clone(), t.area_mm2(&lib)))
        .collect();
    let total_area_mm2: f64 = tier_areas.iter().map(|(_, a)| a).sum();
    let footprint_mm2 = tier_areas.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);

    // One shared cycle model: in 2D the shared-peripheral MUX
    // reconfiguration between array groups costs what the tier switch
    // costs in 3D (paper Sec. III-B notes the 2D MUX sharing), so all
    // variants run the same schedule; only the clock differs. Analog
    // latencies scale with the subarray row count.
    let schedule = IterationSchedule::compute(&ScheduleConfig::for_shape(
        arch.factors,
        1,
        arch.rows,
        arch.cols,
        arch.adc_bits,
    ));
    let cycles_per_iter = schedule.cycles;

    let tsv_count = match variant {
        DesignVariant::H3dThreeTier => {
            TsvSpec::paper().count_for_array(arch.rows, arch.cols) * arch.factors * 2
        }
        _ => 0,
    };
    let frequency_mhz = match variant {
        DesignVariant::H3dThreeTier => {
            BASE_FREQUENCY_MHZ * TsvSpec::paper().frequency_derate(NATIVE_PATH_LOAD_F)
        }
        _ => BASE_FREQUENCY_MHZ,
    };

    let ops_per_iter = arch.ops_per_iteration();
    let iter_latency_s = cycles_per_iter as f64 / (frequency_mhz * 1e6);
    let throughput_tops = ops_per_iter as f64 / iter_latency_s / 1e12;

    let tsv_switches = match variant {
        DesignVariant::H3dThreeTier => h3d_tsv_switches_per_iter(&arch),
        _ => 0,
    };
    let energy_ledger = iteration_energy(
        &lib,
        &EnergyInputs {
            arch,
            substrate: variant.substrate(),
            periphery_node: variant.periphery_node(),
            digital_node: variant.digital_node(),
            cycles_per_iter,
            tsv_switches_per_iter: tsv_switches,
        },
    );
    let energy_per_iter_j = energy_ledger.total();
    let energy_eff_tops_w = ops_per_iter as f64 / energy_per_iter_j / 1e12;

    DesignReport {
        variant,
        arch,
        tier_areas,
        total_area_mm2,
        footprint_mm2,
        frequency_mhz,
        cycles_per_iter,
        ops_per_iter,
        throughput_tops,
        compute_density_tops_mm2: throughput_tops / total_area_mm2,
        energy_per_iter_j,
        energy_eff_tops_w,
        energy_ledger,
        adc_count: match variant {
            DesignVariant::Sram2d => 0,
            _ => arch.adc_count(),
        },
        tsv_count,
        accuracy_pct: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_land_near_table3() {
        let sram = build_report(DesignVariant::Sram2d);
        let hybrid = build_report(DesignVariant::Hybrid2d);
        let h3d = build_report(DesignVariant::H3dThreeTier);
        // Paper: 0.114 / 0.544 / 0.091 mm² — calibration within 10 %.
        assert!(
            (sram.total_area_mm2 - 0.114).abs() / 0.114 < 0.10,
            "{}",
            sram.total_area_mm2
        );
        assert!(
            (hybrid.total_area_mm2 - 0.544).abs() / 0.544 < 0.10,
            "{}",
            hybrid.total_area_mm2
        );
        assert!(
            (h3d.total_area_mm2 - 0.091).abs() / 0.091 < 0.10,
            "{}",
            h3d.total_area_mm2
        );
    }

    #[test]
    fn headline_ratios_hold() {
        let sram = build_report(DesignVariant::Sram2d);
        let hybrid = build_report(DesignVariant::Hybrid2d);
        let h3d = build_report(DesignVariant::H3dThreeTier);
        // Abstract: 5.9× less silicon than hybrid 2D, 5.5× compute density,
        // ~1.2× energy efficiency vs SRAM 2D.
        let area_saving = h3d.area_saving_vs(&hybrid);
        assert!(
            area_saving > 5.0 && area_saving < 7.0,
            "area saving {area_saving}"
        );
        let density = h3d.density_ratio(&hybrid);
        assert!(density > 4.5 && density < 6.5, "density ratio {density}");
        let eff = h3d.efficiency_ratio(&sram);
        assert!(eff > 1.05 && eff < 1.45, "efficiency ratio {eff}");
        // H3D and hybrid share the RRAM substrate → similar TOPS/W.
        let eff_h = h3d.efficiency_ratio(&hybrid);
        assert!(eff_h > 0.95 && eff_h < 1.25, "vs hybrid {eff_h}");
    }

    #[test]
    fn frequency_penalty_only_for_3d() {
        let hybrid = build_report(DesignVariant::Hybrid2d);
        let h3d = build_report(DesignVariant::H3dThreeTier);
        assert_eq!(hybrid.frequency_mhz, 200.0);
        assert!(h3d.frequency_mhz < 190.0 && h3d.frequency_mhz > 180.0);
        // Throughput scales with frequency (same cycle model).
        let ratio = h3d.throughput_tops / hybrid.throughput_tops;
        assert!((ratio - h3d.frequency_mhz / 200.0).abs() < 1e-9);
    }

    #[test]
    fn counts_match_table3() {
        let h3d = build_report(DesignVariant::H3dThreeTier);
        assert_eq!(h3d.adc_count, 1024);
        assert_eq!(h3d.tsv_count, 5120);
        let hybrid = build_report(DesignVariant::Hybrid2d);
        assert_eq!(hybrid.adc_count, 1024);
        assert_eq!(hybrid.tsv_count, 0);
        assert_eq!(build_report(DesignVariant::Sram2d).adc_count, 0);
    }

    #[test]
    fn footprint_is_largest_tier() {
        let h3d = build_report(DesignVariant::H3dThreeTier);
        assert_eq!(h3d.tier_areas.len(), 3);
        let max = h3d.tier_areas.iter().map(|&(_, a)| a).fold(0.0, f64::max);
        assert_eq!(h3d.footprint_mm2, max);
        assert!(h3d.footprint_mm2 < h3d.total_area_mm2 / 2.0);
    }

    #[test]
    fn throughput_in_plausible_range() {
        // Same order as the paper's 1.4–1.5 TOPS.
        for v in [
            DesignVariant::Sram2d,
            DesignVariant::Hybrid2d,
            DesignVariant::H3dThreeTier,
        ] {
            let r = build_report(v);
            assert!(
                r.throughput_tops > 0.3 && r.throughput_tops < 5.0,
                "{v}: {} TOPS",
                r.throughput_tops
            );
            assert!(
                r.energy_eff_tops_w > 20.0 && r.energy_eff_tops_w < 120.0,
                "{v}: {} TOPS/W",
                r.energy_eff_tops_w
            );
        }
    }

    #[test]
    fn adc8_variant_costs_area() {
        let mut arch = ArchParams::paper();
        arch.adc_bits = 8;
        let r8 = build_report_with(DesignVariant::H3dThreeTier, arch);
        let r4 = build_report(DesignVariant::H3dThreeTier);
        assert!(r8.total_area_mm2 > r4.total_area_mm2);
        assert!(r8.energy_per_iter_j > r4.energy_per_iter_j);
    }
}
