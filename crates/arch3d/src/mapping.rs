//! Workload-to-tier mapping and the single-active-RRAM-tier constraint.
//!
//! H3DFact partitions the factorization kernels vertically (paper Fig. 3):
//! similarity MVMs on the tier-3 RRAM, projection MVMs on the tier-2 RRAM,
//! and everything digital (XNOR unbinding, ADCs, buffering, control) on
//! tier-1. Because both RRAM tiers share one set of peripherals through
//! the same vertical interconnects, **only one RRAM tier may be active at
//! any time**; [`TierScheduler`] makes that invariant explicit and counts
//! the activation switches that the batching scheme amortizes.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The three dies of the H3DFact stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierRole {
    /// Tier-3: RRAM arrays computing similarity.
    RramSimilarity,
    /// Tier-2: RRAM arrays computing projection.
    RramProjection,
    /// Tier-1: digital (ADC, SRAM, XNOR, control) — always on.
    Digital,
}

impl TierRole {
    /// True for the two RRAM tiers that share peripherals.
    pub fn is_rram(self) -> bool {
        matches!(self, TierRole::RramSimilarity | TierRole::RramProjection)
    }
}

impl fmt::Display for TierRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierRole::RramSimilarity => write!(f, "tier-3 (similarity RRAM)"),
            TierRole::RramProjection => write!(f, "tier-2 (projection RRAM)"),
            TierRole::Digital => write!(f, "tier-1 (digital)"),
        }
    }
}

/// A kernel phase of the factorization iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelPhase {
    /// XNOR unbinding of the running estimates from the product.
    Unbind,
    /// Analog similarity MVM.
    Similarity,
    /// SAR conversion of the similarity currents.
    AdcConvert,
    /// Analog projection MVM + sign readout.
    Projection,
    /// SRAM buffering of quantized similarities (batch mode).
    Buffer,
    /// Estimate writeback / control.
    Writeback,
}

impl KernelPhase {
    /// Which tier executes this phase (paper Fig. 3 steps I–IV).
    pub fn tier(self) -> TierRole {
        match self {
            KernelPhase::Similarity => TierRole::RramSimilarity,
            KernelPhase::Projection => TierRole::RramProjection,
            KernelPhase::Unbind
            | KernelPhase::AdcConvert
            | KernelPhase::Buffer
            | KernelPhase::Writeback => TierRole::Digital,
        }
    }
}

/// Error: a phase was issued to an RRAM tier that is not the active one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConflict {
    /// Tier the phase needed.
    pub needed: TierRole,
    /// Tier that was active.
    pub active: Option<TierRole>,
}

impl fmt::Display for TierConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.active {
            Some(a) => write!(f, "phase needs {}, but {} is active", self.needed, a),
            None => write!(f, "phase needs {}, but no RRAM tier is active", self.needed),
        }
    }
}

impl Error for TierConflict {}

/// Tracks RRAM tier activation (the WL level-shifter power gating of
/// Fig. 3) and counts switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierScheduler {
    active: Option<TierRole>,
    switches: u64,
    phases_run: u64,
}

impl TierScheduler {
    /// Creates a scheduler with both RRAM tiers shut down.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently active RRAM tier, if any.
    pub fn active(&self) -> Option<TierRole> {
        self.active
    }

    /// Number of tier activation switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of phases executed so far.
    pub fn phases_run(&self) -> u64 {
        self.phases_run
    }

    /// Activates `tier` (deactivating the other RRAM tier). Counts a
    /// switch when the active tier changes.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is the always-on digital tier.
    pub fn activate(&mut self, tier: TierRole) {
        assert!(tier.is_rram(), "only RRAM tiers are switched");
        if self.active != Some(tier) {
            self.switches += 1;
            self.active = Some(tier);
        }
    }

    /// Shuts both RRAM tiers down.
    pub fn shutdown(&mut self) {
        self.active = None;
    }

    /// Runs one phase, enforcing the single-active-tier invariant.
    ///
    /// # Errors
    ///
    /// Returns [`TierConflict`] if the phase needs an RRAM tier that is not
    /// the active one. Digital phases always succeed (tier-1 is always on).
    pub fn run_phase(&mut self, phase: KernelPhase) -> Result<(), TierConflict> {
        let needed = phase.tier();
        if needed.is_rram() && self.active != Some(needed) {
            return Err(TierConflict {
                needed,
                active: self.active,
            });
        }
        self.phases_run += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_map_to_paper_tiers() {
        assert_eq!(KernelPhase::Similarity.tier(), TierRole::RramSimilarity);
        assert_eq!(KernelPhase::Projection.tier(), TierRole::RramProjection);
        assert_eq!(KernelPhase::Unbind.tier(), TierRole::Digital);
        assert_eq!(KernelPhase::AdcConvert.tier(), TierRole::Digital);
        assert!(!TierRole::Digital.is_rram());
    }

    #[test]
    fn conflicting_phase_is_rejected() {
        let mut s = TierScheduler::new();
        // Nothing active: similarity must fail.
        let err = s.run_phase(KernelPhase::Similarity).unwrap_err();
        assert_eq!(err.needed, TierRole::RramSimilarity);
        assert!(err.to_string().contains("no RRAM tier"));

        s.activate(TierRole::RramSimilarity);
        assert!(s.run_phase(KernelPhase::Similarity).is_ok());
        // Projection while similarity tier is active: the violation the
        // SRAM buffer exists to prevent.
        let err = s.run_phase(KernelPhase::Projection).unwrap_err();
        assert_eq!(err.active, Some(TierRole::RramSimilarity));
    }

    #[test]
    fn digital_phases_always_run() {
        let mut s = TierScheduler::new();
        assert!(s.run_phase(KernelPhase::Unbind).is_ok());
        assert!(s.run_phase(KernelPhase::Buffer).is_ok());
        s.activate(TierRole::RramProjection);
        assert!(s.run_phase(KernelPhase::AdcConvert).is_ok());
    }

    #[test]
    fn switch_counting() {
        let mut s = TierScheduler::new();
        s.activate(TierRole::RramSimilarity);
        s.activate(TierRole::RramSimilarity); // no-op
        s.activate(TierRole::RramProjection);
        s.activate(TierRole::RramSimilarity);
        assert_eq!(s.switches(), 3);
    }

    #[test]
    #[should_panic(expected = "only RRAM tiers")]
    fn digital_cannot_be_switched() {
        TierScheduler::new().activate(TierRole::Digital);
    }
}
