//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! micro-benchmark harness.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of criterion's API the workspace benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! measure-and-print runner: per benchmark it warms up, runs timed
//! samples, and prints the mean/min per-iteration time. There is no
//! statistical analysis or HTML report; the numbers are honest wall-clock
//! means, which is all the paper-figure benches need.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint, criterion-style.
pub use std::hint::black_box;

/// Per-iteration input-size hint for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup outputs: batch many per measurement.
    SmallInput,
    /// Large setup outputs: small batches.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the per-sample iteration count to ~10 ms, capped so
        // slow routines still finish promptly.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Runs `routine` on fresh values from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();
        self.iters_per_sample = batch as u64;
        for _ in 0..self.sample_count {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<44} mean {:>12} min {:>12} ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(min),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_count: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Sets the measurement budget (accepted for API compatibility; the
    /// runner's fixed calibration already bounds runtime).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the warm-up budget (accepted for API compatibility).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report(name);
        self
    }
}

/// Declares a benchmark group, criterion-style. Both forms are supported:
/// `criterion_group!(name, fn_a, fn_b)` and
/// `criterion_group! { name = n; config = expr; targets = fn_a, fn_b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("tests/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("tests/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = work
    }

    criterion_group!(simple, work);

    #[test]
    fn group_runs() {
        group();
    }

    #[test]
    fn simple_group_form_runs() {
        simple();
    }
}
