//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Implements the subset the workspace's `tests/properties.rs` suites use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! [`Just`] strategies, tuple composition, [`collection::vec`],
//! [`prop_oneof!`], [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the message instead of minimizing them.
//! - **Deterministic.** Each test derives its RNG from a fixed seed and
//!   the case index, so CI failures reproduce exactly.
//! - Default case count is 64 (the real crate's 256 is overkill for the
//!   simulation-heavy suites here; tests that need more set it via
//!   `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::Rng as _;
use rand::{Rng, SeedableRng};

/// The per-test RNG handed to strategies.
pub type TestRng = StdRng;

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Creates the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy producing vectors of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates `Vec`s whose length follows `len` and whose elements
    /// follow `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Seeds the deterministic RNG of case `case` of test `name`.
pub fn case_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x5DEE_CE66)
}

/// Uniform random choice among strategies (no weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(binder in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        $(let $arg = $arg;)+
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case} of {} failed (no shrinking in the offline shim)",
                            stringify!($name)
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 1usize..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i32..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn oneof_and_map_compose(d in prop_oneof![Just(2usize), 4usize..=6].prop_map(|x| x * 2)) {
            prop_assert!(d == 4 || (8..=12).contains(&d));
        }

        #[test]
        fn flat_map_threads_values(v in (2usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n))) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_work(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::Rng;
        let a: u64 = crate::case_rng("t", 0).gen();
        let b: u64 = crate::case_rng("t", 0).gen();
        let c: u64 = crate::case_rng("t", 1).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
