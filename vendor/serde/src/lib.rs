//! Offline subset of the [`serde`](https://serde.rs) facade.
//!
//! Re-exports the workspace's no-op `Serialize`/`Deserialize` derive
//! macros so that `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile without registry access.
//! No serialization machinery is generated; swapping in the real serde is
//! a manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
