//! Offline no-op `Serialize`/`Deserialize` derives.
//!
//! The workspace derives serde traits on its public data types so that a
//! real serializer can be plugged in once the build environment has
//! registry access. Until then these derives accept the same syntax
//! (including `#[serde(...)]` helper attributes) and expand to nothing:
//! the types stay annotated, no serialization code is generated, and no
//! network dependency exists.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
