//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`), [`SeedableRng`],
//! and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through a
//! SplitMix64 expansion — deterministic, fast, and of ample statistical
//! quality for the simulations here. Streams are **not** bit-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`; nothing in this
//! workspace depends on upstream streams (the code has only ever been
//! built against this shim).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` (Lemire reduction).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply reduction; the bias for the `n`s used in practice
    // (codebook sizes, grid shapes — far below 2^32) is < 2^-32 and
    // irrelevant to these simulations, but reject the short band anyway.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width u64 range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::draw(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Result<Self, core::convert::Infallible> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }
}

pub mod rngs {
    //! The concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), seeded via SplitMix64 state expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state is the one forbidden point of xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_interval_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = rng.gen_range(0..10usize);
            seen[i] = true;
            let j = rng.gen_range(-7..=7i32);
            assert!((-7..=7).contains(&j));
            let x = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&x));
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(10);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn dyn_rng_core_usable() {
        // `R: Rng + ?Sized` call sites pass `&mut StdRng` through generic
        // functions; make sure the blanket impls line up.
        fn takes<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(12);
        let _ = takes(&mut rng);
    }
}
